package sphere

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"dsh/internal/core"
	"dsh/internal/stats"
	"dsh/internal/xrand"
)

// Filter is the filter-based DSH family of Section 2.2: sample a sequence
// z_1, ..., z_m of standard Gaussian vectors and map a point to the index
// of the first "spherical cap" that captures it:
//
//	h(x) = min { i : <z_i, x> >= t }   (else m+1)
//	g(y) = min { i : <z_i, y> >= t }   (else m+2)   for D+
//	g(y) = min { i : <z_i, y> <= -t }  (else m+2)   for D- (negated query)
//
// The projections are generated lazily and deterministically from a per-draw
// seed, so evaluation costs an expected 1/Pr[Z >= t] dot products instead
// of m.
type Filter struct {
	d      int
	t      float64
	m      int
	negate bool
}

// DefaultFilterM returns the projection-sequence length m = ceil(2 t^3 / p')
// used in the proof of Theorem 1.2 (Lemma A.5), where p' is the
// Szarek-Werner lower bound on Pr[Z >= t]; it guarantees
// Pr[no cap captures x] <= exp(-2 t^3).
func DefaultFilterM(t float64) int {
	if t <= 0 {
		panic("sphere: filter threshold must be positive")
	}
	pLo, _ := stats.NormalTailBounds(t)
	m := math.Ceil(2 * t * t * t / pLo)
	if m < 1 {
		m = 1
	}
	if m > 1<<30 {
		panic("sphere: filter m too large; reduce t")
	}
	return int(m)
}

// NewFilterPlus returns the family D+ (increasing CPF in the similarity)
// with threshold t > 0 and the default m.
func NewFilterPlus(d int, t float64) *Filter { return newFilter(d, t, DefaultFilterM(t), false) }

// NewFilterMinus returns the query-negated family D- (decreasing CPF in
// the similarity, Theorem 1.2) with threshold t > 0 and the default m.
func NewFilterMinus(d int, t float64) *Filter { return newFilter(d, t, DefaultFilterM(t), true) }

// NewFilterWithM returns a filter family with an explicit sequence length m;
// negate selects D- over D+.
func NewFilterWithM(d int, t float64, m int, negate bool) *Filter {
	return newFilter(d, t, m, negate)
}

func newFilter(d int, t float64, m int, negate bool) *Filter {
	if d <= 0 {
		panic("sphere: dimension must be positive")
	}
	if t <= 0 {
		panic("sphere: filter threshold must be positive")
	}
	if m < 1 {
		panic("sphere: filter m must be >= 1")
	}
	return &Filter{d: d, t: t, m: m, negate: negate}
}

// T returns the cap threshold t.
func (f *Filter) T() float64 { return f.t }

// M returns the projection-sequence length m.
func (f *Filter) M() int { return f.m }

// Name implements core.Family.
func (f *Filter) Name() string {
	sign := "+"
	if f.negate {
		sign = "-"
	}
	return fmt.Sprintf("filter%s(d=%d,t=%.3g,m=%d)", sign, f.d, f.t, f.m)
}

// capSequence lazily materializes the Gaussian projection sequence
// z_1, z_2, ... of one (h, g) draw. Projections are generated
// deterministically from the draw's seed the first time they are needed
// and memoized, so hashing many points against the same draw (the common
// case when building an index) generates each z_i exactly once.
// A capSequence is shared by the h and g of one pair and may be hashed
// from concurrent goroutines (the index batch query engine does): reads
// go through an atomic snapshot and are lock-free once a projection is
// materialized; extension takes a mutex. Each z_i is a pure function of
// (seed, i), so the sequence is identical however the calls interleave.
type capSequence struct {
	seed uint64
	d    int
	mu   sync.Mutex
	// projs holds an immutable snapshot of the materialized prefix;
	// extension publishes a fresh, longer snapshot.
	projs atomic.Pointer[[][]float64]
}

func (c *capSequence) proj(i int) []float64 {
	if snap := c.projs.Load(); snap != nil && len(*snap) >= i {
		return (*snap)[i-1]
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var cur [][]float64
	if snap := c.projs.Load(); snap != nil {
		cur = *snap
	}
	if len(cur) >= i {
		return cur[i-1]
	}
	// Copy the prefix so published snapshots are never appended to in
	// place under a concurrent reader.
	next := make([][]float64, len(cur), i)
	copy(next, cur)
	for len(next) < i {
		r := xrand.New(c.seed ^ (uint64(len(next)+1) * 0x9e3779b97f4a7c15))
		g := make([]float64, c.d)
		for j := range g {
			g[j] = r.NormFloat64()
		}
		next = append(next, g)
	}
	c.projs.Store(&next)
	return next[i-1]
}

// filterHasher scans the lazily generated cap sequence.
type filterHasher struct {
	caps *capSequence
	t    float64 // capture threshold; negated dot if neg is set
	m    int
	miss uint64
	neg  bool
}

func (fh filterHasher) Hash(p Point) uint64 {
	for i := 1; i <= fh.m; i++ {
		z := fh.caps.proj(i)
		var dot float64
		for j, v := range p {
			dot += z[j] * v
		}
		if fh.neg {
			dot = -dot
		}
		if dot >= fh.t {
			return uint64(i)
		}
	}
	return fh.miss
}

// Sample implements core.Family.
func (f *Filter) Sample(rng *xrand.Rand) core.Pair[Point] {
	caps := &capSequence{seed: rng.Uint64(), d: f.d}
	h := filterHasher{caps: caps, t: f.t, m: f.m, miss: uint64(f.m) + 1}
	g := filterHasher{caps: caps, t: f.t, m: f.m, miss: uint64(f.m) + 2, neg: f.negate}
	return core.Pair[Point]{H: h, G: g}
}

// ExactCPF returns the exact collision probability of the filter family at
// inner product alpha, from bivariate normal orthant probabilities:
//
//	f(alpha) = q/u * (1 - (1-u)^m)
//
// with q = Pr[both points captured by one cap] and u = Pr[at least one
// captured], where "captured" is <z, x> >= t for h and the possibly negated
// condition for g.
func (f *Filter) ExactCPF(alpha float64) float64 {
	rho := alpha
	if f.negate {
		rho = -alpha
	}
	q := stats.BivariateNormalOrthant(f.t, rho)
	u := 2*stats.NormalTail(f.t) - q
	if u <= 0 {
		return 0
	}
	if q <= 0 {
		return 0
	}
	return q / u * (1 - math.Pow(1-u, float64(f.m)))
}

// CPF implements core.Family with the exact closed form.
func (f *Filter) CPF() core.CPF {
	return core.CPF{Domain: core.DomainInnerProduct, Eval: f.ExactCPF}
}

// AsymptoticLogInvCPF returns the Theorem 1.2 / Theorem A.6 leading term of
// ln(1/f(alpha)):
//
//	D+: (1-alpha)/(1+alpha) * t^2/2
//	D-: (1+alpha)/(1-alpha) * t^2/2
//
// The true value differs by Theta(log t).
func (f *Filter) AsymptoticLogInvCPF(alpha float64) float64 {
	if f.negate {
		return (1 + alpha) / (1 - alpha) * f.t * f.t / 2
	}
	return (1 - alpha) / (1 + alpha) * f.t * f.t / 2
}
