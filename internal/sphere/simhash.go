// Package sphere implements the paper's distance-sensitive hash families
// for the unit sphere S^{d-1}, with CPFs expressed as functions of the
// inner product alpha = <x, y> in [-1, 1]:
//
//   - SimHash (Charikar): the classical hyperplane LSH with exact CPF
//     1 - arccos(alpha)/pi; the canonical "LSHable angular similarity".
//   - Cross-polytope LSH CP+ and its anti-LSH variant CP- obtained by
//     negating the query point (Section 2.1).
//   - Filter-based families D+ and D- (Section 2.2) built from sequences
//     of spherical caps, with exact CPFs from bivariate normal orthant
//     probabilities and the Theorem 1.2 asymptotics.
//   - The unimodal annulus family D of Section 6.2 combining D+ and D-.
//   - Valiant-embedding polynomial CPF families (Theorem 5.1), both the
//     exact tensor-power version and a TensorSketch approximation.
package sphere

import (
	"fmt"
	"math"
	"sync"

	"dsh/internal/core"
	"dsh/internal/vec"
	"dsh/internal/xrand"
)

// Point is the point type for unit-sphere families.
type Point = []float64

// SimHashCPF is the exact collision probability of SimHash at inner
// product alpha: 1 - arccos(alpha)/pi.
func SimHashCPF(alpha float64) float64 {
	if alpha > 1 {
		alpha = 1
	}
	if alpha < -1 {
		alpha = -1
	}
	return 1 - math.Acos(alpha)/math.Pi
}

type gaussSignHasher struct{ g []float64 }

func (h gaussSignHasher) Hash(p Point) uint64 {
	if vec.Dot(h.g, p) >= 0 {
		return 1
	}
	return 0
}

type simHash struct{ d int }

// SimHash returns Charikar's hyperplane LSH for dimension d as a symmetric
// DSH family with exact CPF 1 - arccos(alpha)/pi.
func SimHash(d int) core.Family[Point] {
	if d <= 0 {
		panic("sphere: dimension must be positive")
	}
	return simHash{d: d}
}

func (s simHash) Name() string { return fmt.Sprintf("simhash(d=%d)", s.d) }

func (s simHash) Sample(rng *xrand.Rand) core.Pair[Point] {
	h := gaussSignHasher{g: vec.Gaussian(rng, s.d)}
	return core.Pair[Point]{H: h, G: h}
}

func (s simHash) CPF() core.CPF {
	return core.CPF{Domain: core.DomainInnerProduct, Eval: SimHashCPF}
}

// AntiSimHash returns the query-negated SimHash: h(x) = sign(<g, x>),
// g(y) = sign(<g, -y>), with exact CPF arccos(alpha)/pi -- decreasing in
// the similarity. It is the simplest instance of the paper's
// "negate the query point" trick on the sphere.
func AntiSimHash(d int) core.Family[Point] {
	if d <= 0 {
		panic("sphere: dimension must be positive")
	}
	return antiSimHash{d: d}
}

type antiSimHash struct{ d int }

func (s antiSimHash) Name() string { return fmt.Sprintf("antisimhash(d=%d)", s.d) }

func (s antiSimHash) Sample(rng *xrand.Rand) core.Pair[Point] {
	g := vec.Gaussian(rng, s.d)
	h := gaussSignHasher{g: g}
	neg := negatedHasher{inner: h}
	return core.Pair[Point]{H: h, G: neg}
}

func (s antiSimHash) CPF() core.CPF {
	return core.CPF{Domain: core.DomainInnerProduct, Eval: func(alpha float64) float64 {
		return SimHashCPF(-alpha)
	}}
}

// negatedHasher applies an inner hasher to the negated point: the paper's
// central asymmetry device (Sections 2.1, 2.2).
type negatedHasher struct{ inner core.Hasher[Point] }

// negScratch pools negation buffers so Hash is allocation-free in steady
// state. Buffers are pooled (not per-hasher) because one hasher may be
// shared by concurrent query workers.
var negScratch = sync.Pool{New: func() any { return new([]float64) }}

func (n negatedHasher) Hash(p Point) uint64 {
	bp := negScratch.Get().(*[]float64)
	buf := *bp
	if cap(buf) < len(p) {
		buf = make([]float64, len(p))
	}
	buf = buf[:len(p)]
	for i, v := range p {
		buf[i] = -v
	}
	key := n.inner.Hash(buf)
	*bp = buf
	negScratch.Put(bp)
	return key
}

// HashNeg hashes a point that the caller has already negated, letting the
// index layer negate a query once per query instead of once per
// repetition (internal/index recognizes this method on query hashers).
func (n negatedHasher) HashNeg(neg Point) uint64 { return n.inner.Hash(neg) }

// NegateQuery converts any symmetric sphere family with CPF f(alpha) into
// the family with CPF f(-alpha) by applying g to the negated query point.
func NegateQuery(fam core.Family[Point]) core.Family[Point] {
	return negateQueryFamily{inner: fam}
}

type negateQueryFamily struct{ inner core.Family[Point] }

func (n negateQueryFamily) Name() string { return "neg(" + n.inner.Name() + ")" }

func (n negateQueryFamily) Sample(rng *xrand.Rand) core.Pair[Point] {
	pair := n.inner.Sample(rng)
	return core.Pair[Point]{H: pair.H, G: negatedHasher{inner: pair.G}}
}

func (n negateQueryFamily) CPF() core.CPF {
	inner := n.inner.CPF()
	if inner.Domain != core.DomainInnerProduct {
		panic("sphere: NegateQuery requires an inner-product CPF")
	}
	return core.CPF{Domain: core.DomainInnerProduct, Eval: func(alpha float64) float64 {
		return inner.Eval(-alpha)
	}}
}
