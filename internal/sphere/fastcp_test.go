package sphere

import (
	"math"
	"testing"

	"dsh/internal/core"
	"dsh/internal/vec"
	"dsh/internal/xrand"
)

// stdErr is the binomial standard error of a Monte-Carlo estimate, with a
// half-count floor so zero-hit estimates still carry uncertainty.
func stdErr(e core.Estimate) float64 {
	p := e.P
	if e.Hits == 0 {
		p = 0.5 / float64(e.Trials)
	}
	return math.Sqrt(p * (1 - p) / float64(e.Trials))
}

// TestFastCrossPolytopeMatchesDenseCPF is the differential test behind the
// drop-in claim: at a power-of-two dimension (so padding is the identity
// and both families rotate the same space) the Monte-Carlo collision
// probabilities of the structured pseudo-rotation must match the dense
// Gaussian rotation within statistical error across the alpha range. The
// tolerance is a 4-sigma combined-variance z-test plus a small allowance
// (0.01) for the structured rotation's lower-order model error, which
// Kennedy & Ward bound but do not eliminate.
func TestFastCrossPolytopeMatchesDenseCPF(t *testing.T) {
	const d = 64
	trials := 4000
	if testing.Short() {
		trials = 1200
	}
	gen := func(rng *xrand.Rand, a float64) (Point, Point) {
		return vec.UnitPairWithDot(rng, d, a)
	}
	rng := xrand.NewFromString(t.Name())
	for _, alpha := range []float64{-0.9, -0.5, 0, 0.5, 0.9} {
		dense := core.EstimateCollision(rng, CrossPolytope(d), gen, alpha, trials, 3)
		fast := core.EstimateCollision(rng, FastCrossPolytope(d), gen, alpha, trials, 3)
		tol := 4*math.Sqrt(stdErr(dense)*stdErr(dense)+stdErr(fast)*stdErr(fast)) + 0.01
		if diff := math.Abs(dense.P - fast.P); diff > tol {
			t.Errorf("alpha=%v: dense CPF %.4f vs fast CPF %.4f, |diff| %.4f > tol %.4f",
				alpha, dense.P, fast.P, diff, tol)
		}
	}
}

// TestFastAntiCrossPolytopeMirrorsFast checks the anti variant is the
// alpha -> -alpha mirror of the positive one, Monte-Carlo, like the dense
// pair.
func TestFastAntiCrossPolytopeMirrorsFast(t *testing.T) {
	const d = 32
	trials := 4000
	if testing.Short() {
		trials = 1200
	}
	gen := func(rng *xrand.Rand, a float64) (Point, Point) {
		return vec.UnitPairWithDot(rng, d, a)
	}
	rng := xrand.NewFromString(t.Name())
	const alpha = 0.5
	plus := core.EstimateCollision(rng, FastCrossPolytope(d), gen, -alpha, trials, 3)
	minus := core.EstimateCollision(rng, FastAntiCrossPolytope(d), gen, alpha, trials, 3)
	tol := 4*math.Sqrt(stdErr(plus)*stdErr(plus)+stdErr(minus)*stdErr(minus)) + 0.005
	if diff := math.Abs(plus.P - minus.P); diff > tol {
		t.Errorf("mirror identity: CP+(-%v)=%.4f vs CP-(%v)=%.4f, |diff| %.4f > tol %.4f",
			alpha, plus.P, alpha, minus.P, diff, tol)
	}
}

func TestFastCrossPolytopeCollidesAtAlphaOne(t *testing.T) {
	rng := xrand.New(3)
	fam := FastCrossPolytope(24) // pads 24 -> 32
	x := vec.RandomUnit(rng, 24)
	for i := 0; i < 50; i++ {
		pair := fam.Sample(rng)
		if !pair.Collides(x, x) {
			t.Fatal("identical points must always collide under CP+")
		}
	}
}

func TestFastCrossPolytopeCPFUsesPaddedDimension(t *testing.T) {
	f := FastCrossPolytope(24).CPF()
	want := CrossPolytopeAsymptoticCPF(32, 0.5)
	if got := f.Eval(0.5); math.Abs(got-want) > 1e-14 {
		t.Errorf("CPF(0.5) = %v, want padded-dimension value %v", got, want)
	}
	g := FastAntiCrossPolytope(24).CPF()
	if got, want := g.Eval(0.5), CrossPolytopeAsymptoticCPF(32, -0.5); math.Abs(got-want) > 1e-14 {
		t.Errorf("anti CPF(0.5) = %v, want %v", got, want)
	}
}

// TestCrossPolytopeTieBreak pins the shared deterministic argmax contract:
// on equal |v| the lowest index wins, for the dense hasher, the fast
// hasher, and the argmaxAbs helper itself.
func TestCrossPolytopeTieBreak(t *testing.T) {
	// argmaxAbs directly.
	if best, neg := argmaxAbs([]float64{1, -1}); best != 0 || neg {
		t.Errorf("argmaxAbs([1,-1]) = (%d,%v), want (0,false)", best, neg)
	}
	if best, neg := argmaxAbs([]float64{-2, 2, 1}); best != 0 || !neg {
		t.Errorf("argmaxAbs([-2,2,1]) = (%d,%v), want (0,true)", best, neg)
	}
	if best, neg := argmaxAbs([]float64{0.5, 1, -1}); best != 1 || neg {
		t.Errorf("argmaxAbs([0.5,1,-1]) = (%d,%v), want (1,false)", best, neg)
	}

	// Dense hasher: rows picked so both rotated coordinates come out with
	// equal magnitude; the first must win, carrying its own sign.
	dense := crossPolytopeHasher{rows: [][]float64{{0, 1}, {1, 0}}}
	if got := dense.Hash([]float64{1, 1}); got != cpKey(0, false) {
		t.Errorf("dense tie (1,1): key %d, want %d", got, cpKey(0, false))
	}
	if got := dense.Hash([]float64{-1, -1}); got != cpKey(0, true) {
		t.Errorf("dense tie (-1,-1): key %d, want %d", got, cpKey(0, true))
	}

	// Fast hasher with all-positive signs: three Hadamard rounds send
	// (1, 0) to 2*(1, 1) — a tie that must resolve to index 0, positive.
	ones := []float64{1, 1}
	fast := &fastCrossPolytopeHasher{d: 2, n: 2, signs: [][]float64{ones, ones, ones}}
	if got := fast.Hash([]float64{1, 0}); got != cpKey(0, false) {
		t.Errorf("fast tie (1,0): key %d, want %d", got, cpKey(0, false))
	}
	if got := fast.Hash([]float64{-1, 0}); got != cpKey(0, true) {
		t.Errorf("fast tie (-1,0): key %d, want %d", got, cpKey(0, true))
	}
}

// TestFastCrossPolytopeBatchIdentical checks the core.BatchHasher
// contract: HashBatch emits bit-identical keys to per-point Hash.
func TestFastCrossPolytopeBatchIdentical(t *testing.T) {
	rng := xrand.New(9)
	pair := FastCrossPolytope(24).Sample(rng)
	bh, ok := pair.H.(core.BatchHasher[Point])
	if !ok {
		t.Fatal("fast cross-polytope hasher must implement core.BatchHasher")
	}
	points := make([]Point, 101) // odd count exercises the remainder path
	for i := range points {
		points[i] = vec.RandomUnit(rng, 24)
	}
	out := make([]uint64, len(points))
	bh.HashBatch(points, out)
	for i, p := range points {
		if want := pair.H.Hash(p); out[i] != want {
			t.Fatalf("point %d: HashBatch key %d != Hash key %d", i, out[i], want)
		}
	}
}

func TestPackedSimHashBatchIdentical(t *testing.T) {
	rng := xrand.New(10)
	pair := PackedSimHash(24, 7).Sample(rng)
	bh, ok := pair.H.(core.BatchHasher[Point])
	if !ok {
		t.Fatal("packed simhash hasher must implement core.BatchHasher")
	}
	points := make([]Point, 99)
	for i := range points {
		points[i] = vec.RandomUnit(rng, 24)
	}
	out := make([]uint64, len(points))
	bh.HashBatch(points, out)
	for i, p := range points {
		if want := pair.H.Hash(p); out[i] != want {
			t.Fatalf("point %d: HashBatch key %d != Hash key %d", i, out[i], want)
		}
	}
}

func TestPackedSimHashEmpirical(t *testing.T) {
	checkSphereCPF(t, PackedSimHash(testDim, 4), []float64{-0.5, 0, 0.5, 0.9}, 20000)
}

func TestPackedSimHashCPFMatchesPower(t *testing.T) {
	packed := PackedSimHash(testDim, 6).CPF()
	power := core.Power[Point](SimHash(testDim), 6).CPF()
	for _, a := range []float64{-0.9, -0.3, 0, 0.4, 0.8} {
		if math.Abs(packed.Eval(a)-power.Eval(a)) > 1e-12 {
			t.Errorf("CPF mismatch at %v: packed %v vs power %v", a, packed.Eval(a), power.Eval(a))
		}
	}
}

func TestFastFamilyGuards(t *testing.T) {
	for name, fn := range map[string]func(){
		"FastCrossPolytope(0)":     func() { FastCrossPolytope(0) },
		"FastAntiCrossPolytope(0)": func() { FastAntiCrossPolytope(0) },
		"PackedSimHash(0,4)":       func() { PackedSimHash(0, 4) },
		"PackedSimHash(8,0)":       func() { PackedSimHash(8, 0) },
		"PackedSimHash(8,65)":      func() { PackedSimHash(8, 65) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestFastHashPathsNoAllocs asserts the 0 allocs/op steady-state contract
// on every new hash path: fast-CP Hash (pooled FWHT scratch), fast-CP
// HashBatch, packed-simhash Hash, and packed-simhash HashBatch.
func TestFastHashPathsNoAllocs(t *testing.T) {
	rng := xrand.New(11)
	cp := FastCrossPolytope(100).Sample(rng) // pads 100 -> 128
	sh := PackedSimHash(64, 8).Sample(rng)
	cpBatch := cp.H.(core.BatchHasher[Point])
	shBatch := sh.H.(core.BatchHasher[Point])
	points := make([]Point, 16)
	for i := range points {
		if i < 8 {
			points[i] = vec.RandomUnit(rng, 100)
		} else {
			points[i] = vec.RandomUnit(rng, 64)
		}
	}
	cpPts, shPts := points[:8], points[8:]
	out := make([]uint64, 8)
	// Warm the scratch pool before measuring.
	cp.H.Hash(cpPts[0])
	cpBatch.HashBatch(cpPts, out)
	cases := map[string]func(){
		"fastcp.Hash":            func() { cp.H.Hash(cpPts[0]) },
		"fastcp.HashBatch":       func() { cpBatch.HashBatch(cpPts, out) },
		"packedsimhash.Hash":     func() { sh.H.Hash(shPts[0]) },
		"packedsimhash.HashBatch": func() { shBatch.HashBatch(shPts, out) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}
