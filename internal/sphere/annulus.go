package sphere

import (
	"fmt"

	"dsh/internal/core"
	"dsh/internal/xrand"
)

// AnnulusFamily is the unimodal family D of Section 6.2: the combination
// of a filter family D+ with threshold t+ and a query-negated family D-
// with threshold t- = gamma * t+, gamma = (1-alphaMax)/(1+alphaMax).
// A draw hashes a point to the pair (h+(x), h-(x)); its CPF is the product
// of the component CPFs and peaks near alphaMax, decaying on both sides,
// which is exactly what the annulus-search data structure of Theorem 6.1
// needs. AnnulusFamily implements core.Family.
type AnnulusFamily struct {
	plus     *Filter
	minus    *Filter
	alphaMax float64
	combined core.Family[Point]
}

// NewAnnulus returns the Section 6.2 family for dimension d peaking at
// inner product alphaMax in (-1, 1), with base threshold t > 0
// (t+ = t, t- = gamma*t).
func NewAnnulus(d int, alphaMax, t float64) *AnnulusFamily {
	if alphaMax <= -1 || alphaMax >= 1 {
		panic("sphere: alphaMax must lie in (-1, 1)")
	}
	if t <= 0 {
		panic("sphere: threshold must be positive")
	}
	gamma := (1 - alphaMax) / (1 + alphaMax)
	plus := NewFilterPlus(d, t)
	minus := NewFilterMinus(d, gamma*t)
	return &AnnulusFamily{
		plus:     plus,
		minus:    minus,
		alphaMax: alphaMax,
		combined: core.Concat[Point](plus, minus),
	}
}

// Name implements core.Family.
func (a *AnnulusFamily) Name() string {
	return fmt.Sprintf("annulus(amax=%.3g,t+=%.3g,t-=%.3g)", a.alphaMax, a.plus.T(), a.minus.T())
}

// Sample implements core.Family by delegating to the concatenation of D+
// and D-.
func (a *AnnulusFamily) Sample(rng *xrand.Rand) core.Pair[Point] {
	return a.combined.Sample(rng)
}

// CPF implements core.Family: the exact product CPF of the components.
func (a *AnnulusFamily) CPF() core.CPF { return a.combined.CPF() }

// Plus returns the D+ component.
func (a *AnnulusFamily) Plus() *Filter { return a.plus }

// Minus returns the D- component.
func (a *AnnulusFamily) Minus() *Filter { return a.minus }

// AlphaMax returns the similarity at which the CPF (approximately) peaks.
func (a *AnnulusFamily) AlphaMax() float64 { return a.alphaMax }

// AnnulusBounds returns the interval [alphaMinus, alphaPlus] of Theorem 6.2
// for width parameter s > 1: all alpha with
//
//	(1/s) * a(alphaMax) <= a(alpha) <= s * a(alphaMax),
//
// where a(alpha) = (1-alpha)/(1+alpha). Inside the interval the CPF is
// within a constant of its peak; outside it decays at least as fast as the
// boundary value.
func AnnulusBounds(alphaMax, s float64) (alphaMinus, alphaPlus float64) {
	if s <= 1 {
		panic("sphere: annulus width parameter must exceed 1")
	}
	aMax := (1 - alphaMax) / (1 + alphaMax)
	fromA := func(a float64) float64 { return (1 - a) / (1 + a) }
	return fromA(s * aMax), fromA(aMax / s)
}

// AnnulusLogInvBoundary returns the Theorem 6.2 estimate of ln(1/f) at the
// boundary of the width-s interval: (s + 1/s) * a(alphaMax) * t^2/2 (up to
// polynomial-in-t factors).
func AnnulusLogInvBoundary(alphaMax, s, t float64) float64 {
	aMax := (1 - alphaMax) / (1 + alphaMax)
	return (s + 1/s) * aMax * t * t / 2
}

var _ core.Family[Point] = (*AnnulusFamily)(nil)
