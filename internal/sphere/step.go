package sphere

import (
	"fmt"
	"math"

	"dsh/internal/core"
)

// NewStep composes unimodal annulus families into an approximate
// "step function" CPF (the Figure 2 construction, via Lemma 1.4(b)): the
// result is roughly flat for alpha in [alphaLo, alphaHi] and decays
// quickly below alphaLo. levels is the number of unimodal components; their
// peaks are spread evenly across the plateau and their mixture weights are
// chosen inversely proportional to each component's own peak value so the
// plateau is level.
//
// Step CPFs give output-sensitive range reporting (Theorem 6.5) and the
// privacy-preserving distance estimation protocol of Section 6.4, where a
// flat plateau is exactly the "reveal nothing about how close" property.
func NewStep(d int, alphaLo, alphaHi float64, levels int, t float64) core.Family[Point] {
	if alphaLo >= alphaHi {
		panic("sphere: step plateau empty")
	}
	if alphaLo <= -1 || alphaHi >= 1 {
		panic("sphere: plateau must lie inside (-1, 1)")
	}
	if levels < 1 {
		panic("sphere: need at least one level")
	}
	parts := make([]core.Family[Point], levels)
	weights := make([]float64, levels)
	var total float64
	for i := 0; i < levels; i++ {
		frac := 0.5
		if levels > 1 {
			frac = float64(i) / float64(levels-1)
		}
		alpha := alphaLo + frac*(alphaHi-alphaLo)
		fam := NewAnnulus(d, alpha, t)
		parts[i] = fam
		peak := fam.CPF().Eval(alpha)
		if peak <= 0 {
			panic("sphere: degenerate step component")
		}
		weights[i] = 1 / peak
		total += weights[i]
	}
	for i := range weights {
		weights[i] /= total
	}
	mix := core.Mixture(parts, weights)
	return core.Renamed[Point]{
		Inner:   mix,
		NewName: fmt.Sprintf("step(d=%d,[%.2g,%.2g],levels=%d,t=%.3g)", d, alphaLo, alphaHi, levels, t),
	}
}

// PlateauStats reports the minimum and maximum of a CPF over an interval,
// sampled on a grid; the fmax/fmin ratio controls the output sensitivity of
// Theorem 6.5.
func PlateauStats(f core.CPF, lo, hi float64, gridPoints int) (fmin, fmax float64) {
	if gridPoints < 2 {
		gridPoints = 2
	}
	fmin = math.Inf(1)
	fmax = math.Inf(-1)
	for i := 0; i < gridPoints; i++ {
		a := lo + (hi-lo)*float64(i)/float64(gridPoints-1)
		v := f.Eval(a)
		if v < fmin {
			fmin = v
		}
		if v > fmax {
			fmax = v
		}
	}
	return fmin, fmax
}
