package sphere

import (
	"math"
	"testing"

	"dsh/internal/core"
	"dsh/internal/poly"
	"dsh/internal/vec"
	"dsh/internal/xrand"
)

const valiantDim = 6

func valiantPairs(rng *xrand.Rand, alpha float64) (Point, Point) {
	return vec.UnitPairWithDot(rng, valiantDim, alpha)
}

func TestValiantEmbeddingsInnerProduct(t *testing.T) {
	rng := xrand.New(1)
	// P(t) = 0.25 - 0.25 t + 0.5 t^2: abs sum = 1.
	p := poly.New(0.25, -0.25, 0.5)
	phi1, phi2, err := ValiantEmbeddings(valiantDim, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, alpha := range []float64{-0.8, -0.2, 0, 0.5, 1} {
		x, y := vec.UnitPairWithDot(rng, valiantDim, alpha)
		e1, e2 := phi1(x), phi2(y)
		if math.Abs(vec.Norm(e1)-1) > 1e-10 || math.Abs(vec.Norm(e2)-1) > 1e-10 {
			t.Fatalf("embeddings not unit norm: %v, %v", vec.Norm(e1), vec.Norm(e2))
		}
		got := vec.Dot(e1, e2)
		want := p.Eval(alpha)
		if math.Abs(got-want) > 1e-10 {
			t.Fatalf("alpha=%v: <phi1,phi2> = %v, want %v", alpha, got, want)
		}
	}
}

func TestValiantEmbeddingsRejectsBadPolynomials(t *testing.T) {
	if _, _, err := ValiantEmbeddings(4, poly.New(0.5, 0.2)); err == nil {
		t.Error("abs sum != 1 should error")
	}
	if _, _, err := ValiantEmbeddings(4, poly.Poly{}); err == nil {
		t.Error("zero polynomial should error")
	}
}

func TestValiantFamilyCPF(t *testing.T) {
	// Figure 4 example: P(t) = t^2.
	p := poly.New(0, 0, 1)
	fam, err := NewValiant(valiantDim, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(2)
	for _, alpha := range []float64{-0.7, 0, 0.5, 0.9} {
		est := core.EstimateCollision(rng, fam, valiantPairs, alpha, 20000, 5)
		want := SimHashCPF(alpha * alpha)
		if !est.Interval.Contains(want) {
			t.Errorf("alpha=%v: estimate %v excludes %v", alpha, est.P, want)
		}
	}
}

func TestValiantFamilyNegativePolynomial(t *testing.T) {
	// P(t) = -t^2: CPF = 1 - arccos(-a^2)/pi, *decreasing* in |alpha|.
	p := poly.New(0, 0, -1)
	fam, err := NewValiant(valiantDim, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(3)
	for _, alpha := range []float64{0, 0.6, -0.6} {
		est := core.EstimateCollision(rng, fam, valiantPairs, alpha, 20000, 5)
		want := SimHashCPF(-alpha * alpha)
		if !est.Interval.Contains(want) {
			t.Errorf("alpha=%v: estimate %v excludes %v", alpha, est.P, want)
		}
	}
}

func TestValiantFamilyMixedPolynomial(t *testing.T) {
	// Figure 4 example: P(t) = (-t^3 + t^2 - t)/3.
	p := poly.New(0, -1.0/3, 1.0/3, -1.0/3)
	fam, err := NewValiant(valiantDim, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(4)
	for _, alpha := range []float64{-0.8, 0.3} {
		est := core.EstimateCollision(rng, fam, valiantPairs, alpha, 20000, 5)
		want := SimHashCPF(p.Eval(alpha))
		if !est.Interval.Contains(want) {
			t.Errorf("alpha=%v: estimate %v excludes %v", alpha, est.P, want)
		}
	}
}

func TestValiantChebyshevNormalized(t *testing.T) {
	// Figure 4 right panel: normalized Chebyshev T_3: (4t^3 - 3t)/7.
	p := poly.Chebyshev(3).NormalizeAbsSum()
	fam, err := NewValiant(valiantDim, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	for _, alpha := range []float64{-0.9, 0, 0.9} {
		est := core.EstimateCollision(rng, fam, valiantPairs, alpha, 20000, 5)
		want := SimHashCPF(p.Eval(alpha))
		if !est.Interval.Contains(want) {
			t.Errorf("alpha=%v: estimate %v excludes %v", alpha, est.P, want)
		}
	}
}

func TestSketchValiantApproximatesExact(t *testing.T) {
	p := poly.New(0, 0, 1) // t^2
	fam, err := NewSketchValiant(valiantDim, p, 512)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(6)
	for _, alpha := range []float64{0, 0.7} {
		est := core.EstimateCollision(rng, fam, valiantPairs, alpha, 15000, 5)
		want := SimHashCPF(alpha * alpha)
		// Sketch error tolerance on top of Monte-Carlo noise.
		if math.Abs(est.P-want) > 0.03 {
			t.Errorf("alpha=%v: estimate %v, want ~%v", alpha, est.P, want)
		}
	}
}

func TestSketchValiantValidation(t *testing.T) {
	if _, err := NewSketchValiant(4, poly.New(0.9, 0.9), 64); err == nil {
		t.Error("abs sum != 1 should error")
	}
	if _, err := NewSketchValiant(4, poly.New(1), 1); err == nil {
		t.Error("tiny width should error")
	}
	if _, err := NewSketchValiant(4, poly.Poly{}, 64); err == nil {
		t.Error("zero polynomial should error")
	}
}

func TestValiantHyperplaneQueryShape(t *testing.T) {
	// Section 6.1: a CPF peaking at alpha = 0 for hyperplane queries can be
	// built from P(t) = -t^2 (CPF maximal where <x,q> = 0). Verify the
	// analytic CPF peaks at 0.
	p := poly.New(0, 0, -1)
	fam, err := NewValiant(valiantDim, p)
	if err != nil {
		t.Fatal(err)
	}
	f := fam.CPF()
	f0 := f.Eval(0)
	for _, alpha := range []float64{-0.9, -0.5, 0.5, 0.9} {
		if f.Eval(alpha) >= f0 {
			t.Errorf("CPF(%v) = %v not below peak %v", alpha, f.Eval(alpha), f0)
		}
	}
}
