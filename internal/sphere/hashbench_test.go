package sphere

import (
	"fmt"
	"testing"

	"dsh/internal/core"
	"dsh/internal/vec"
	"dsh/internal/xrand"
)

// Hash-evaluation microbenchmarks behind the "make hashing as fast as
// probing" work: dense vs fast cross-polytope (O(d^2) vs O(d log d)
// rotations) and scalar vs batched simhash (per-query dot products vs a
// cache-blocked matrix product). All paths must report 0 allocs/op at
// steady state; CI greps -benchmem output for regressions.

var benchDims = []int{64, 256, 1024}

const benchBatch = 256

func benchPoints(d, n int) []Point {
	rng := xrand.New(uint64(d)*31 + uint64(n))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = vec.RandomUnit(rng, d)
	}
	return pts
}

func benchHashScalar(b *testing.B, fam core.Family[Point]) {
	rng := xrand.New(1)
	h := fam.Sample(rng).H
	pts := benchPoints(dimOf(fam), benchBatch)
	h.Hash(pts[0]) // warm any pooled scratch before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Hash(pts[i%len(pts)])
	}
}

func benchHashBatch(b *testing.B, fam core.Family[Point]) {
	rng := xrand.New(1)
	h := fam.Sample(rng).H.(core.BatchHasher[Point])
	pts := benchPoints(dimOf(fam), benchBatch)
	out := make([]uint64, len(pts))
	h.HashBatch(pts, out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.HashBatch(pts, out)
	}
	b.StopTimer()
	// Report per-point time so rows compare directly with the scalar
	// benchmarks' ns/op.
	perPoint := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(len(pts))
	b.ReportMetric(perPoint, "ns/point")
}

// dimOf recovers the input dimension from the families benchmarked here.
func dimOf(fam core.Family[Point]) int {
	switch f := fam.(type) {
	case crossPolytope:
		return f.d
	case fastCrossPolytope:
		return f.d
	case packedSimHash:
		return f.d
	}
	var d int
	fmt.Sscanf(fam.Name(), "%*[a-z](d=%d", &d)
	return d
}

func BenchmarkHashEvalDenseCP(b *testing.B) {
	for _, d := range benchDims {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			benchHashScalar(b, CrossPolytope(d))
		})
	}
}

func BenchmarkHashEvalFastCP(b *testing.B) {
	for _, d := range benchDims {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			benchHashScalar(b, FastCrossPolytope(d))
		})
	}
}

func BenchmarkHashEvalFastCPBatch(b *testing.B) {
	for _, d := range benchDims {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			benchHashBatch(b, FastCrossPolytope(d))
		})
	}
}

func BenchmarkHashEvalSimHashScalar(b *testing.B) {
	for _, d := range benchDims {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			benchHashScalar(b, PackedSimHash(d, 8))
		})
	}
}

func BenchmarkHashEvalSimHashBatched(b *testing.B) {
	for _, d := range benchDims {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			benchHashBatch(b, PackedSimHash(d, 8))
		})
	}
}
