package sphere

import (
	"fmt"
	"math"

	"dsh/internal/core"
	"dsh/internal/poly"
	"dsh/internal/sketch"
	"dsh/internal/vec"
	"dsh/internal/xrand"
)

// ValiantEmbeddings returns the asymmetric pair of maps phi1, phi2 of
// Valiant (used by Theorem 5.1): for P(t) = sum a_i t^i with
// sum |a_i| = 1 they satisfy, for unit vectors x and y,
//
//	<phi1(x), phi2(y)> = P(<x, y>),   |phi1(x)| = |phi2(y)| = 1.
//
// Block i is sqrt|a_i| * x^(i) on the data side and
// sign(a_i) * sqrt|a_i| * y^(i) on the query side; zero-coefficient blocks
// are omitted from both. The output dimension is sum over nonzero a_i of
// d^i, so keep d and deg(P) small or use NewSketchValiant.
func ValiantEmbeddings(d int, p poly.Poly) (phi1, phi2 func(Point) Point, err error) {
	if p.IsZero() {
		return nil, nil, fmt.Errorf("sphere: zero polynomial")
	}
	if s := p.AbsCoeffSum(); math.Abs(s-1) > 1e-9 {
		return nil, nil, fmt.Errorf("sphere: absolute coefficient sum is %v, want 1", s)
	}
	coeffs := append([]float64(nil), p.Coeffs...)
	build := func(query bool) func(Point) Point {
		return func(x Point) Point {
			if len(x) != d {
				panic("sphere: embedding dimension mismatch")
			}
			var out []float64
			for i, a := range coeffs {
				if a == 0 {
					continue
				}
				scale := math.Sqrt(math.Abs(a))
				if query && a < 0 {
					scale = -scale
				}
				out = append(out, vec.Scaled(vec.TensorPower(x, i), scale)...)
			}
			return out
		}
	}
	return build(false), build(true), nil
}

// valiantFamily realizes Theorem 5.1 with SimHash as the LSHable angular
// similarity: CPF(alpha) = sim(P(alpha)) = 1 - arccos(P(alpha))/pi.
type valiantFamily struct {
	d    int
	dim  int // embedded dimension
	p    poly.Poly
	phi1 func(Point) Point
	phi2 func(Point) Point
}

// NewValiant returns the Theorem 5.1 family for input dimension d and
// polynomial p (with absolute coefficient sum 1), using SimHash on the
// exact Valiant embedding. Its CPF is exactly
// SimHashCPF(P(alpha)) = 1 - arccos(P(alpha))/pi.
func NewValiant(d int, p poly.Poly) (core.Family[Point], error) {
	phi1, phi2, err := ValiantEmbeddings(d, p)
	if err != nil {
		return nil, err
	}
	dim := 0
	for i, a := range p.Coeffs {
		if a != 0 {
			n := 1
			for j := 0; j < i; j++ {
				n *= d
			}
			dim += n
		}
	}
	return valiantFamily{d: d, dim: dim, p: p, phi1: phi1, phi2: phi2}, nil
}

func (v valiantFamily) Name() string { return fmt.Sprintf("valiant(d=%d,%s)", v.d, v.p) }

func (v valiantFamily) Sample(rng *xrand.Rand) core.Pair[Point] {
	g := vec.Gaussian(rng, v.dim)
	h := core.HasherFunc[Point](func(x Point) uint64 {
		if vec.Dot(g, v.phi1(x)) >= 0 {
			return 1
		}
		return 0
	})
	q := core.HasherFunc[Point](func(y Point) uint64 {
		if vec.Dot(g, v.phi2(y)) >= 0 {
			return 1
		}
		return 0
	})
	return core.Pair[Point]{H: h, G: q}
}

func (v valiantFamily) CPF() core.CPF {
	p := v.p
	return core.CPF{Domain: core.DomainInnerProduct, Eval: func(alpha float64) float64 {
		return SimHashCPF(p.Eval(alpha))
	}}
}

// sketchValiant approximates the Valiant embedding with TensorSketch so the
// embedded dimension is O(deg(P) * width) instead of d^deg(P).
type sketchValiant struct {
	d     int
	width int
	p     poly.Poly
}

// NewSketchValiant returns a Theorem 5.1 family whose embeddings are
// TensorSketch approximations of width `width` (rounded to a power of two):
// its CPF approaches SimHashCPF(P(alpha)) as width grows, with O(1/sqrt(width))
// error. Use NewValiant when d^deg(P) is affordable and exactness matters.
func NewSketchValiant(d int, p poly.Poly, width int) (core.Family[Point], error) {
	if p.IsZero() {
		return nil, fmt.Errorf("sphere: zero polynomial")
	}
	if s := p.AbsCoeffSum(); math.Abs(s-1) > 1e-9 {
		return nil, fmt.Errorf("sphere: absolute coefficient sum is %v, want 1", s)
	}
	if width < 2 {
		return nil, fmt.Errorf("sphere: sketch width must be >= 2")
	}
	return sketchValiant{d: d, width: width, p: p}, nil
}

func (v sketchValiant) Name() string {
	return fmt.Sprintf("sketchvaliant(d=%d,w=%d,%s)", v.d, v.width, v.p)
}

func (v sketchValiant) Sample(rng *xrand.Rand) core.Pair[Point] {
	ps := sketch.NewPolySketch(rng, v.d, v.p.Coeffs, v.width)
	// The embedded dimension is 1 + (deg blocks) * roundedWidth; probe it.
	probe := ps.Left(make([]float64, v.d))
	g := vec.Gaussian(rng, len(probe))
	h := core.HasherFunc[Point](func(x Point) uint64 {
		if vec.Dot(g, ps.Left(x)) >= 0 {
			return 1
		}
		return 0
	})
	q := core.HasherFunc[Point](func(y Point) uint64 {
		if vec.Dot(g, ps.Right(y)) >= 0 {
			return 1
		}
		return 0
	})
	return core.Pair[Point]{H: h, G: q}
}

func (v sketchValiant) CPF() core.CPF {
	p := v.p
	return core.CPF{Domain: core.DomainInnerProduct, Eval: func(alpha float64) float64 {
		return SimHashCPF(p.Eval(alpha))
	}}
}
