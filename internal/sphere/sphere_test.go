package sphere

import (
	"math"
	"testing"

	"dsh/internal/core"
	"dsh/internal/vec"
	"dsh/internal/xrand"
)

const testDim = 24

// pairsAt produces unit-vector pairs with exact inner product alpha.
func pairsAt(rng *xrand.Rand, alpha float64) (Point, Point) {
	return vec.UnitPairWithDot(rng, testDim, alpha)
}

func checkSphereCPF(t *testing.T, fam core.Family[Point], alphas []float64, trials int) {
	t.Helper()
	rng := xrand.NewFromString(t.Name() + fam.Name())
	for _, a := range alphas {
		est := core.EstimateCollision(rng, fam, pairsAt, a, trials, 5)
		want := fam.CPF().Eval(a)
		if !est.Interval.Contains(want) {
			t.Errorf("%s at alpha=%v: estimate %v (interval [%v,%v]) excludes analytic %v",
				fam.Name(), a, est.P, est.Interval.Lo, est.Interval.Hi, want)
		}
	}
}

func TestSimHashCPFFunction(t *testing.T) {
	cases := []struct{ alpha, want float64 }{
		{1, 1}, {-1, 0}, {0, 0.5},
		{0.5, 1 - math.Acos(0.5)/math.Pi},
	}
	for _, c := range cases {
		if got := SimHashCPF(c.alpha); math.Abs(got-c.want) > 1e-14 {
			t.Errorf("SimHashCPF(%v) = %v, want %v", c.alpha, got, c.want)
		}
	}
	// Clamping out-of-range arguments.
	if SimHashCPF(1.5) != 1 || SimHashCPF(-1.5) != 0 {
		t.Error("SimHashCPF should clamp")
	}
}

func TestSimHashEmpirical(t *testing.T) {
	checkSphereCPF(t, SimHash(testDim), []float64{-0.9, -0.5, 0, 0.4, 0.8, 0.99}, 20000)
}

func TestAntiSimHashEmpirical(t *testing.T) {
	checkSphereCPF(t, AntiSimHash(testDim), []float64{-0.8, 0, 0.6, 0.95}, 20000)
}

func TestAntiSimHashIsMirrorOfSimHash(t *testing.T) {
	f := SimHash(testDim).CPF()
	g := AntiSimHash(testDim).CPF()
	for _, a := range []float64{-0.7, -0.2, 0, 0.3, 0.9} {
		if math.Abs(f.Eval(-a)-g.Eval(a)) > 1e-14 {
			t.Errorf("mirror identity fails at %v", a)
		}
	}
}

func TestNegateQueryWrapsCPF(t *testing.T) {
	fam := NegateQuery(SimHash(testDim))
	for _, a := range []float64{-0.5, 0, 0.5} {
		if math.Abs(fam.CPF().Eval(a)-SimHashCPF(-a)) > 1e-14 {
			t.Errorf("NegateQuery CPF wrong at %v", a)
		}
	}
	checkSphereCPF(t, fam, []float64{-0.5, 0.5}, 20000)
}

func TestCrossPolytopeCollidesAtAlphaOne(t *testing.T) {
	rng := xrand.New(1)
	fam := CrossPolytope(testDim)
	x := vec.RandomUnit(rng, testDim)
	for i := 0; i < 50; i++ {
		pair := fam.Sample(rng)
		if !pair.Collides(x, x) {
			t.Fatal("CP+ must collide for identical points")
		}
	}
}

func TestAntiCrossPolytopeNeverCollidesAtAlphaOne(t *testing.T) {
	rng := xrand.New(2)
	fam := AntiCrossPolytope(testDim)
	x := vec.RandomUnit(rng, testDim)
	for i := 0; i < 200; i++ {
		pair := fam.Sample(rng)
		if pair.Collides(x, x) {
			t.Fatal("CP- must never collide for identical points (antipodal images)")
		}
	}
}

func TestCrossPolytopeMonotoneInAlpha(t *testing.T) {
	rng := xrand.New(3)
	fam := CrossPolytope(testDim)
	var prev float64 = -1
	for _, a := range []float64{-0.8, -0.3, 0.2, 0.6, 0.9} {
		est := core.EstimateCollision(rng, fam, pairsAt, a, 8000, 5)
		if est.P < prev-0.02 {
			t.Fatalf("CP+ empirical CPF not increasing: %v after %v", est.P, prev)
		}
		prev = est.P
	}
}

func TestCrossPolytopeMirrorSymmetry(t *testing.T) {
	// CP-(alpha) should match CP+(-alpha) (Corollary 2.2): both are
	// rotation-invariant functionals of the inner product.
	rng := xrand.New(4)
	plus := CrossPolytope(testDim)
	minus := AntiCrossPolytope(testDim)
	for _, a := range []float64{-0.5, 0, 0.5} {
		ePlus := core.EstimateCollision(rng, plus, pairsAt, -a, 20000, 5)
		eMinus := core.EstimateCollision(rng, minus, pairsAt, a, 20000, 5)
		if math.Abs(ePlus.P-eMinus.P) > 0.02 {
			t.Errorf("alpha=%v: CP+(-a)=%v vs CP-(a)=%v", a, ePlus.P, eMinus.P)
		}
	}
}

func TestCrossPolytopeAsymptoticShape(t *testing.T) {
	// ln(1/f(alpha)) should grow roughly like (1-a)/(1+a) ln d; test the
	// ratio between two alphas, where the ln ln d terms partially cancel.
	rng := xrand.New(5)
	fam := CrossPolytope(64)
	gen := func(r *xrand.Rand, a float64) (Point, Point) {
		return vec.UnitPairWithDot(r, 64, a)
	}
	estLo := core.EstimateCollision(rng, fam, gen, 0.0, 60000, 5)
	estHi := core.EstimateCollision(rng, fam, gen, 0.6, 60000, 5)
	gotRatio := math.Log(1/estLo.P) / math.Log(1/estHi.P)
	wantRatio := 1.0 / ((1 - 0.6) / (1 + 0.6)) // = 4
	if gotRatio < wantRatio*0.5 || gotRatio > wantRatio*1.6 {
		t.Errorf("asymptotic ratio = %v, want within 50%% of %v", gotRatio, wantRatio)
	}
}

func TestDefaultFilterM(t *testing.T) {
	if m := DefaultFilterM(1); m < 5 || m > 50 {
		t.Errorf("m(t=1) = %d out of plausible range", m)
	}
	m1, m2 := DefaultFilterM(1), DefaultFilterM(2)
	if m2 <= m1 {
		t.Error("m should grow with t")
	}
	defer func() {
		if recover() == nil {
			t.Error("t <= 0 should panic")
		}
	}()
	DefaultFilterM(0)
}

func TestFilterPlusExactCPF(t *testing.T) {
	fam := NewFilterPlus(testDim, 1.5)
	checkSphereCPF(t, fam, []float64{-0.5, 0, 0.4, 0.8}, 20000)
}

func TestFilterMinusExactCPF(t *testing.T) {
	fam := NewFilterMinus(testDim, 1.5)
	checkSphereCPF(t, fam, []float64{-0.8, -0.4, 0, 0.5}, 20000)
}

func TestFilterMirrorIdentity(t *testing.T) {
	// Lemma A.1: f+(alpha) = f-(-alpha) exactly, in the closed forms.
	plus := NewFilterPlus(testDim, 1.2)
	minus := NewFilterMinus(testDim, 1.2)
	for _, a := range []float64{-0.9, -0.3, 0, 0.4, 0.9} {
		if math.Abs(plus.ExactCPF(a)-minus.ExactCPF(-a)) > 1e-14 {
			t.Errorf("mirror identity fails at alpha=%v", a)
		}
	}
}

func TestFilterCPFMonotone(t *testing.T) {
	plus := NewFilterPlus(testDim, 2)
	minus := NewFilterMinus(testDim, 2)
	prevP, prevM := -1.0, 2.0
	for a := -0.95; a <= 0.96; a += 0.05 {
		p := plus.ExactCPF(a)
		m := minus.ExactCPF(a)
		if p < prevP-1e-12 {
			t.Fatalf("D+ CPF not increasing at %v", a)
		}
		if m > prevM+1e-12 {
			t.Fatalf("D- CPF not decreasing at %v", a)
		}
		prevP, prevM = p, m
	}
}

func TestFilterAsymptoticTracksExact(t *testing.T) {
	// ln(1/f(alpha)) - (1±a)/(1∓a) t²/2 should be Theta(log t): check the
	// deviation is modest for moderate t.
	for _, tt := range []float64{2, 2.5} {
		fam := NewFilterMinus(testDim, tt)
		for _, a := range []float64{-0.4, 0, 0.4} {
			exact := -math.Log(fam.ExactCPF(a))
			asym := fam.AsymptoticLogInvCPF(a)
			dev := math.Abs(exact - asym)
			if dev > 4*math.Log(tt)+4 {
				t.Errorf("t=%v alpha=%v: |ln(1/f) - asym| = %v too large (exact %v, asym %v)",
					tt, a, dev, exact, asym)
			}
		}
	}
}

func TestFilterLowMTruncation(t *testing.T) {
	// With tiny m the miss probability is large; the exact CPF accounts
	// for the truncation. Verify empirically.
	fam := NewFilterWithM(testDim, 1.5, 3, false)
	checkSphereCPF(t, fam, []float64{0, 0.6}, 20000)
}

func TestFilterConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewFilterPlus(0, 1) },
		func() { NewFilterPlus(4, -1) },
		func() { NewFilterWithM(4, 1, 0, false) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestAnnulusCPFUnimodal(t *testing.T) {
	fam := NewAnnulus(testDim, 0.3, 1.6)
	f := fam.CPF()
	peak := fam.AlphaMax()
	fPeak := f.Eval(peak)
	// The CPF should be below its peak value away from alphaMax on both
	// sides, and decreasing as we move out.
	left := []float64{peak - 0.2, peak - 0.5, peak - 0.9}
	right := []float64{peak + 0.2, peak + 0.5}
	prev := fPeak
	for _, a := range left {
		v := f.Eval(a)
		if v > prev*1.05 {
			t.Errorf("CPF not decaying left of peak: f(%v)=%v after %v", a, v, prev)
		}
		prev = v
	}
	prev = fPeak
	for _, a := range right {
		v := f.Eval(a)
		if v > prev*1.05 {
			t.Errorf("CPF not decaying right of peak: f(%v)=%v after %v", a, v, prev)
		}
		prev = v
	}
}

func TestAnnulusPeakNearAlphaMax(t *testing.T) {
	for _, amax := range []float64{-0.3, 0, 0.4} {
		fam := NewAnnulus(testDim, amax, 2)
		f := fam.CPF()
		bestA, bestV := -1.0, -1.0
		for a := -0.95; a <= 0.95; a += 0.01 {
			if v := f.Eval(a); v > bestV {
				bestV, bestA = v, a
			}
		}
		if math.Abs(bestA-amax) > 0.15 {
			t.Errorf("amax=%v: CPF peaks at %v", amax, bestA)
		}
	}
}

func TestAnnulusEmpirical(t *testing.T) {
	fam := NewAnnulus(testDim, 0.2, 1.4)
	checkSphereCPF(t, fam, []float64{-0.4, 0.2, 0.7}, 20000)
}

func TestAnnulusBounds(t *testing.T) {
	aMinus, aPlus := AnnulusBounds(0, 2)
	// a(alpha) = (1-alpha)/(1+alpha); aMax = 1. Boundaries a=2 and a=0.5:
	// alpha- = (1-2)/(1+2) = -1/3, alpha+ = (1-0.5)/(1.5) = 1/3.
	if math.Abs(aMinus+1.0/3) > 1e-12 || math.Abs(aPlus-1.0/3) > 1e-12 {
		t.Errorf("bounds = %v, %v", aMinus, aPlus)
	}
	if aMinus >= aPlus {
		t.Error("bounds inverted")
	}
	// Larger s widens the interval.
	lo3, hi3 := AnnulusBounds(0, 3)
	if lo3 >= aMinus || hi3 <= aPlus {
		t.Error("wider s should widen interval")
	}
	defer func() {
		if recover() == nil {
			t.Error("s <= 1 should panic")
		}
	}()
	AnnulusBounds(0, 1)
}

func TestAnnulusCPFComparableAcrossBoundary(t *testing.T) {
	// Theorem 6.2: at the two interval boundaries ln(1/f) should be
	// approximately equal.
	fam := NewAnnulus(testDim, 0.25, 2)
	aMinus, aPlus := AnnulusBounds(0.25, 2)
	f := fam.CPF()
	l1 := -math.Log(f.Eval(aMinus))
	l2 := -math.Log(f.Eval(aPlus))
	if math.Abs(l1-l2) > 0.35*math.Max(l1, l2) {
		t.Errorf("boundary log-inv-CPFs differ: %v vs %v", l1, l2)
	}
}

func TestAnnulusConstructorPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewAnnulus(testDim, 1, 1) },
		func() { NewAnnulus(testDim, 0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestNegatedHasherScratchAndHashNeg pins the allocation-free negate path:
// Hash through the pooled scratch must agree with hashing an explicitly
// negated copy, HashNeg must consume a pre-negated point, and the steady
// state must not allocate.
func TestNegatedHasherScratchAndHashNeg(t *testing.T) {
	rng := xrand.New(91)
	for _, fam := range []core.Family[Point]{
		AntiSimHash(testDim),
		NegateQuery(SimHash(testDim)),
		AntiCrossPolytope(testDim),
	} {
		for trial := 0; trial < 20; trial++ {
			pair := fam.Sample(rng)
			p := vec.RandomUnit(rng, testDim)
			neg := vec.Neg(p)
			nh, ok := pair.G.(interface{ HashNeg(Point) uint64 })
			if !ok {
				t.Fatalf("%s: query hasher does not expose HashNeg", fam.Name())
			}
			got := pair.G.Hash(p)
			if want := nh.HashNeg(neg); got != want {
				t.Fatalf("%s: Hash(p)=%d != HashNeg(-p)=%d", fam.Name(), got, want)
			}
		}
	}

	// Steady-state Hash through the pooled scratch should not allocate.
	// sync.Pool contents can be dropped by a concurrent GC, so allow a
	// tiny residue instead of demanding exactly zero.
	pair := AntiSimHash(testDim).Sample(rng)
	p := vec.RandomUnit(rng, testDim)
	pair.G.Hash(p)
	if allocs := testing.AllocsPerRun(500, func() { pair.G.Hash(p) }); allocs > 0.1 {
		t.Errorf("negatedHasher.Hash allocates %.2f/op in steady state, want ~0", allocs)
	}
}
