package sphere

import (
	"fmt"
	"math"

	"dsh/internal/core"
	"dsh/internal/xrand"
)

// packedSimHashHasher evaluates k Gaussian hyperplanes packed row-major
// into one contiguous matrix and emits the k sign bits as a single key
// (bit r = sign of row r's dot product). It is the fused, cache-friendly
// equivalent of concatenating k gaussSignHashers: one draw touches one
// contiguous k*d block instead of k scattered vectors, and HashBatch
// evaluates a whole query block as a blocked matrix product.
type packedSimHashHasher struct {
	d, k int
	rows []float64 // k*d Gaussian entries, row-major
}

func (h *packedSimHashHasher) Hash(p Point) uint64 {
	if len(p) != h.d {
		panic("sphere: dimension mismatch")
	}
	var bits uint64
	for r := 0; r < h.k; r++ {
		row := h.rows[r*h.d : (r+1)*h.d]
		var sum float64
		for i, v := range row {
			sum += v * p[i]
		}
		if sum >= 0 {
			bits |= 1 << uint(r)
		}
	}
	return bits
}

// HashBatch implements core.BatchHasher as a cache-blocked matrix product:
// four queries advance through the packed rows together, so each row is
// loaded once per quartet instead of once per query, and the four
// independent accumulators break the serial FMA latency chain that bounds
// the scalar dot product. (Wider shapes — eight queries, or row pairs with
// eight accumulators — were measured slower on amd64: they spill past the
// register file.) Every individual dot product keeps Hash's sequential
// i = 0..d-1 accumulation order, so the emitted keys are bit-identical to
// per-point Hash calls.
func (h *packedSimHashHasher) HashBatch(points []Point, out []uint64) {
	if len(out) < len(points) {
		panic("sphere: HashBatch output shorter than input")
	}
	d := h.d
	j := 0
	for ; j+4 <= len(points); j += 4 {
		p0, p1, p2, p3 := points[j], points[j+1], points[j+2], points[j+3]
		if len(p0) != d || len(p1) != d || len(p2) != d || len(p3) != d {
			panic("sphere: dimension mismatch")
		}
		p0, p1, p2, p3 = p0[:d], p1[:d], p2[:d], p3[:d]
		var b0, b1, b2, b3 uint64
		for r := 0; r < h.k; r++ {
			row := h.rows[r*d : (r+1)*d : (r+1)*d]
			var s0, s1, s2, s3 float64
			for i, v := range row {
				s0 += v * p0[i]
				s1 += v * p1[i]
				s2 += v * p2[i]
				s3 += v * p3[i]
			}
			bit := uint64(1) << uint(r)
			if s0 >= 0 {
				b0 |= bit
			}
			if s1 >= 0 {
				b1 |= bit
			}
			if s2 >= 0 {
				b2 |= bit
			}
			if s3 >= 0 {
				b3 |= bit
			}
		}
		out[j], out[j+1], out[j+2], out[j+3] = b0, b1, b2, b3
	}
	for ; j < len(points); j++ {
		out[j] = h.Hash(points[j])
	}
}

type packedSimHash struct{ d, k int }

// PackedSimHash returns the row-packed batched SimHash family for
// dimension d: one draw packs k independent Gaussian hyperplanes row-major
// into a single matrix whose hasher emits the k sign bits as one key. Its
// CPF is SimHashCPF(alpha)^k — the same as Power(SimHash(d), k) — but the
// hasher implements core.BatchHasher, evaluating a block of queries as a
// blocked matrix product with the repetition's draws held cache-resident.
// k must be in [1, 64] so the bits fit one key.
func PackedSimHash(d, k int) core.Family[Point] {
	if d <= 0 {
		panic("sphere: dimension must be positive")
	}
	if k < 1 || k > 64 {
		panic("sphere: PackedSimHash requires 1 <= k <= 64")
	}
	return packedSimHash{d: d, k: k}
}

func (s packedSimHash) Name() string {
	return fmt.Sprintf("batchsimhash(d=%d,k=%d)", s.d, s.k)
}

func (s packedSimHash) Sample(rng *xrand.Rand) core.Pair[Point] {
	rows := make([]float64, s.k*s.d)
	for i := range rows {
		rows[i] = rng.NormFloat64()
	}
	h := &packedSimHashHasher{d: s.d, k: s.k, rows: rows}
	return core.Pair[Point]{H: h, G: h}
}

func (s packedSimHash) CPF() core.CPF {
	k := s.k
	return core.CPF{Domain: core.DomainInnerProduct, Eval: func(alpha float64) float64 {
		return math.Pow(SimHashCPF(alpha), float64(k))
	}}
}
