package sphere

import (
	"fmt"
	"math"

	"dsh/internal/core"
	"dsh/internal/fft"
	"dsh/internal/xrand"
)

// fastRounds is the number of (random-sign-flip x Walsh-Hadamard) rounds in
// the structured pseudo-rotation. Three rounds is the standard choice
// (Kennedy & Ward, "Fast Cross-Polytope LSH"; also FALCONN's default):
// empirically the collision probabilities are statistically
// indistinguishable from a dense Gaussian rotation, while one round alone
// leaks the input's coordinate structure.
const fastRounds = 3

// argmaxAbs returns the index of the entry of v with the largest absolute
// value, and whether that entry is negative. Ties on equal |v| break to
// the lowest index (strict > comparison), the deterministic argmax
// contract shared by the dense and fast cross-polytope hashers.
func argmaxAbs(v []float64) (best int, neg bool) {
	bestAbs := math.Inf(-1)
	for i, x := range v {
		a := math.Abs(x)
		if a > bestAbs {
			bestAbs = a
			best = i
			neg = x < 0
		}
	}
	return best, neg
}

// cpKey encodes a cross-polytope vertex (coordinate index plus sign) as a
// hash key: index in the high bits, sign in bit 0.
func cpKey(best int, neg bool) uint64 {
	h := uint64(best) << 1
	if neg {
		h |= 1
	}
	return h
}

// fastCrossPolytopeHasher maps a point to the closest signed basis vector
// of its image under a structured pseudo-rotation: fastRounds rounds of
// (random sign flips x unnormalized FWHT) over the input zero-padded to
// the next power of two. Each round costs O(n log n) against the dense
// rotation's O(d^2), with collision probabilities provably comparable
// (Kennedy & Ward). Hash draws its work buffer from the fft scratch pool,
// so steady-state hashing performs no heap allocations.
type fastCrossPolytopeHasher struct {
	d     int // input dimension
	n     int // padded power-of-two dimension; argmax runs over all n coordinates
	signs [][]float64 // fastRounds diagonals of random ±1 entries, length n
}

// pseudoRotate applies the sign-flip x FWHT rounds to buf in place.
// The transforms are unnormalized: every round scales uniformly by
// sqrt(n) beyond orthonormal, which changes neither the argmax nor the
// sign, so the normalization is skipped on the hot path.
func (c *fastCrossPolytopeHasher) pseudoRotate(buf []float64) {
	for _, s := range c.signs {
		for i, sv := range s {
			buf[i] *= sv
		}
		fft.FWHT(buf)
	}
}

func (c *fastCrossPolytopeHasher) Hash(p Point) uint64 {
	if len(p) != c.d {
		panic("sphere: dimension mismatch")
	}
	s := fft.AcquirePadded(p)
	buf := s.Data()
	c.pseudoRotate(buf)
	best, neg := argmaxAbs(buf)
	s.Release()
	return cpKey(best, neg)
}

// HashBatch implements core.BatchHasher: it evaluates the pseudo-rotation
// over a block of points, reusing one pooled scratch buffer across the
// whole block. The per-point operations are exactly Hash's, so the keys
// are bit-identical to the scalar path.
func (c *fastCrossPolytopeHasher) HashBatch(points []Point, out []uint64) {
	if len(out) < len(points) {
		panic("sphere: HashBatch output shorter than input")
	}
	s := fft.Acquire(c.n)
	buf := s.Data()
	for j, p := range points {
		if len(p) != c.d {
			panic("sphere: dimension mismatch")
		}
		copy(buf, p)
		for i := c.d; i < c.n; i++ {
			buf[i] = 0
		}
		c.pseudoRotate(buf)
		best, neg := argmaxAbs(buf)
		out[j] = cpKey(best, neg)
	}
	s.Release()
}

type fastCrossPolytope struct {
	d      int
	negate bool
}

// FastCrossPolytope returns the FFT-accelerated cross-polytope family: the
// same CP+ construction as CrossPolytope, with the dense d x d Gaussian
// rotation replaced by fastRounds rounds of (random sign flips x
// Walsh-Hadamard transform) over the input zero-padded to n =
// NextPowerOfTwo(d). Hashing costs O(d log d) instead of O(d^2); Kennedy &
// Ward show the collision probabilities match the dense rotation up to
// lower-order terms (the differential test in fastcp_test.go pins them to
// within Monte-Carlo error). The hasher implements core.BatchHasher, so
// the index batch engine can stream query blocks through one repetition's
// draws.
//
// For non-power-of-two d the family behaves like a cross-polytope in the
// padded dimension n (the argmax ranges over all n rotated coordinates),
// so its CPF is the Theorem 2.1 asymptotic at n, not d.
func FastCrossPolytope(d int) core.Family[Point] {
	if d <= 0 {
		panic("sphere: dimension must be positive")
	}
	return fastCrossPolytope{d: d}
}

// FastAntiCrossPolytope returns the query-negated fast family with
// (asymptotically) decreasing CPF f(alpha) = fFastCP(-alpha), the
// structured-rotation analogue of AntiCrossPolytope. Its query hasher
// supports the HashNeg pre-negated fast path, so the index layer negates
// a query once per query rather than once per repetition.
func FastAntiCrossPolytope(d int) core.Family[Point] {
	if d <= 0 {
		panic("sphere: dimension must be positive")
	}
	return fastCrossPolytope{d: d, negate: true}
}

func (c fastCrossPolytope) Name() string {
	if c.negate {
		return fmt.Sprintf("fastanticrosspolytope(d=%d)", c.d)
	}
	return fmt.Sprintf("fastcrosspolytope(d=%d)", c.d)
}

func (c fastCrossPolytope) Sample(rng *xrand.Rand) core.Pair[Point] {
	n := fft.NextPowerOfTwo(c.d)
	signs := make([][]float64, fastRounds)
	for r := range signs {
		sv := make([]float64, n)
		for i := range sv {
			if rng.Uint64()&1 == 0 {
				sv[i] = 1
			} else {
				sv[i] = -1
			}
		}
		signs[r] = sv
	}
	h := &fastCrossPolytopeHasher{d: c.d, n: n, signs: signs}
	if c.negate {
		return core.Pair[Point]{H: h, G: negatedHasher{inner: h}}
	}
	return core.Pair[Point]{H: h, G: h}
}

func (c fastCrossPolytope) CPF() core.CPF {
	n := fft.NextPowerOfTwo(c.d)
	neg := c.negate
	return core.CPF{Domain: core.DomainInnerProduct, Eval: func(alpha float64) float64 {
		if neg {
			alpha = -alpha
		}
		return CrossPolytopeAsymptoticCPF(n, alpha)
	}}
}
