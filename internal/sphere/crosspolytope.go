package sphere

import (
	"fmt"
	"math"

	"dsh/internal/core"
	"dsh/internal/vec"
	"dsh/internal/xrand"
)

// crossPolytopeHasher applies a random Gaussian matrix and maps the point
// to the closest signed standard basis vector of the rotated image, i.e.
// the coordinate of maximum absolute value together with its sign.
//
// Tie-breaking contract (shared with the fast variant's argmaxAbs, and
// pinned by TestCrossPolytopeTieBreak): on equal |v| the lowest coordinate
// index wins — the comparison is strictly greater-than — so dense and fast
// cross-polytope hashers resolve the (measure-zero, but floating-point
// reachable) tie cases identically and deterministically.
type crossPolytopeHasher struct {
	rows [][]float64
}

func (c crossPolytopeHasher) Hash(p Point) uint64 {
	best := 0
	bestAbs := math.Inf(-1)
	neg := false
	for i, row := range c.rows {
		v := vec.Dot(row, p)
		a := math.Abs(v)
		if a > bestAbs {
			bestAbs = a
			best = i
			neg = v < 0
		}
	}
	return cpKey(best, neg)
}

type crossPolytope struct {
	d      int
	negate bool
}

// CrossPolytope returns the cross-polytope LSH family CP+ of Andoni et al.
// for dimension d, wrapped as a symmetric DSH family. Its CPF has no simple
// closed form; CPF() returns the Theorem 2.1 asymptotic approximation
//
//	ln(1/f(alpha)) = (1-alpha)/(1+alpha) * ln d + O_alpha(ln ln d),
//
// evaluated without the lower-order term, so treat it as a shape reference
// rather than an exact value (the Monte-Carlo estimator gives exact values).
func CrossPolytope(d int) core.Family[Point] {
	if d <= 0 {
		panic("sphere: dimension must be positive")
	}
	return crossPolytope{d: d}
}

// AntiCrossPolytope returns the query-negated family CP- of Section 2.1
// with (asymptotically) decreasing CPF f(alpha) = fCP(-alpha)
// (Corollary 2.2): intuitively it maps the query to the *furthest* vertex
// of the rotated cross-polytope.
func AntiCrossPolytope(d int) core.Family[Point] {
	if d <= 0 {
		panic("sphere: dimension must be positive")
	}
	return crossPolytope{d: d, negate: true}
}

func (c crossPolytope) Name() string {
	if c.negate {
		return fmt.Sprintf("anticrosspolytope(d=%d)", c.d)
	}
	return fmt.Sprintf("crosspolytope(d=%d)", c.d)
}

func (c crossPolytope) Sample(rng *xrand.Rand) core.Pair[Point] {
	rows := make([][]float64, c.d)
	for i := range rows {
		rows[i] = vec.Gaussian(rng, c.d)
	}
	h := crossPolytopeHasher{rows: rows}
	if c.negate {
		return core.Pair[Point]{H: h, G: negatedHasher{inner: h}}
	}
	return core.Pair[Point]{H: h, G: h}
}

// CrossPolytopeAsymptoticCPF returns the Theorem 2.1 leading-order value
// f(alpha) = d^{-(1-alpha)/(1+alpha)} for CP+ at dimension d.
func CrossPolytopeAsymptoticCPF(d int, alpha float64) float64 {
	if alpha >= 1 {
		return 1
	}
	if alpha <= -1 {
		return 0
	}
	return math.Exp(-(1 - alpha) / (1 + alpha) * math.Log(float64(d)))
}

func (c crossPolytope) CPF() core.CPF {
	d := c.d
	neg := c.negate
	return core.CPF{Domain: core.DomainInnerProduct, Eval: func(alpha float64) float64 {
		if neg {
			alpha = -alpha
		}
		return CrossPolytopeAsymptoticCPF(d, alpha)
	}}
}
