package sphere

import (
	"testing"
)

func TestStepPlateauFlat(t *testing.T) {
	fam := NewStep(testDim, 0.3, 0.9, 5, 1.8)
	f := fam.CPF()
	fmin, fmax := PlateauStats(f, 0.3, 0.9, 40)
	if fmin <= 0 {
		t.Fatalf("plateau min = %v", fmin)
	}
	if ratio := fmax / fmin; ratio > 4 {
		t.Errorf("plateau fmax/fmin = %v, want <= 4", ratio)
	}
}

func TestStepDecaysBelowPlateau(t *testing.T) {
	fam := NewStep(testDim, 0.3, 0.9, 5, 2.4)
	f := fam.CPF()
	fmin, _ := PlateauStats(f, 0.3, 0.9, 40)
	// Well below the plateau the CPF must be much smaller than fmin.
	if v := f.Eval(-0.3); v > fmin/4 {
		t.Errorf("f(-0.3) = %v not well below plateau min %v", v, fmin)
	}
	if v := f.Eval(-0.7); v > fmin/20 {
		t.Errorf("f(-0.7) = %v not far below plateau min %v", v, fmin)
	}
}

func TestStepEmpirical(t *testing.T) {
	fam := NewStep(testDim, 0.2, 0.8, 3, 1.5)
	checkSphereCPF(t, fam, []float64{-0.3, 0.4, 0.7}, 20000)
}

func TestStepValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewStep(testDim, 0.5, 0.4, 3, 1) },
		func() { NewStep(testDim, -1, 0.5, 3, 1) },
		func() { NewStep(testDim, 0.1, 0.5, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPlateauStatsDegenerate(t *testing.T) {
	f := SimHash(testDim).CPF()
	fmin, fmax := PlateauStats(f, 0.5, 0.5, 1)
	if fmin != fmax {
		t.Errorf("single-point plateau: %v != %v", fmin, fmax)
	}
}
