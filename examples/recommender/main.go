// Recommender: the paper's motivating example. Given an article the user
// read, recommend articles that are on the same topic but not too aligned
// (near-duplicates are boring; unrelated articles are irrelevant).
//
// A classical LSH nearest-neighbor index returns near-duplicates. The
// distance-sensitive annulus family (Section 6.2) targets the band
// "similar but distinct" directly.
//
//	go run ./examples/recommender
package main

import (
	"fmt"

	"dsh"
	"dsh/internal/index"
	"dsh/internal/vec"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

func main() {
	rng := xrand.New(7)
	const (
		d      = 32
		topics = 40
	)
	// Two-level corpus: subtopics inside topics. Within-subtopic pairs are
	// near-duplicates (sim ~0.85), same-topic cross-subtopic pairs sit in
	// the interesting band (~0.45-0.55), cross-topic pairs are unrelated.
	corpus := workload.NewHierarchicalCorpus(rng, d, topics, 3, 25, 0.16, 0.074)
	n := len(corpus.Points)
	fmt.Printf("corpus: %d articles in %d topics x 3 subtopics (d=%d)\n\n", n, topics, d)

	// Interesting recommendations: similarity in [0.35, 0.65] -- same topical
	// neighborhood, but not a near-duplicate (~0.85) and not noise (~0).
	const lo, hi = 0.35, 0.65
	within := func(q, x []float64) bool {
		a := vec.Dot(q, x)
		return a >= lo && a <= hi
	}

	ann := dsh.Annulus(d, (lo+hi)/2, 2.2)
	L := dsh.RepetitionsForCPF(ann.CPF().Eval((lo + hi) / 2))
	ai := index.NewAnnulus[[]float64](rng, ann, L, corpus.Points, within)
	fmt.Printf("annulus index: L = %d repetitions\n", L)

	// Compare with a classical nearest-neighbor approach: it returns the
	// *closest* candidates, which are near-duplicates from the same topic.
	nn := dsh.NewIndex(rng, dsh.Power(dsh.SimHash(d), 8), 24, corpus.Points)

	queriesRun, annHits, nnDuplicates := 0, 0, 0
	for qi := 0; qi < 10; qi++ {
		qid := rng.Intn(n)
		q := corpus.Points[qid]
		queriesRun++

		// DSH annulus recommendation.
		rec, stats := ai.Query(q)
		if rec >= 0 {
			annHits++
			sim := vec.Dot(q, corpus.Points[rec])
			fmt.Printf("query %d (topic %2d): recommend article %5d: sim %.3f, topic %2d, scanned %d\n",
				qi, corpus.Topic[qid], rec, sim, corpus.Topic[rec], stats.Candidates)
		} else {
			fmt.Printf("query %d (topic %2d): no in-band article found (scanned %d)\n",
				qi, corpus.Topic[qid], stats.Candidates)
		}

		// Classical NN: best candidate by similarity.
		best, bestSim := -1, -2.0
		for _, id := range nn.CollectDistinct(q, 400) {
			if id == qid {
				continue
			}
			if s := vec.Dot(q, corpus.Points[id]); s > bestSim {
				best, bestSim = id, s
			}
		}
		if best >= 0 && bestSim > hi {
			nnDuplicates++
		}
	}
	fmt.Printf("\nannulus index found an \"interesting\" (sim in [%.1f, %.1f]) article in %d/%d queries\n",
		lo, hi, annHits, queriesRun)
	fmt.Printf("classical NN returned a too-close (sim > %.1f) near-duplicate in %d/%d queries\n",
		hi, nnDuplicates, queriesRun)
	fmt.Println("\nthe NN index cannot be asked for \"close but not too close\":")
	fmt.Println("its CPF is monotone, so the closest points always dominate the candidates.")
}
