// Churn: dynamic indexing on the recommender workload. The corpus of
// article embeddings is not static — new articles are published, old ones
// are retracted — so the index must absorb inserts and deletes without a
// full rebuild. dsh.DynamicIndex layers a mutable memtable over frozen
// flat-table segments with a tombstone bitmap for deletes; with
// AsyncFreeze a full memtable keeps serving reads while its tables build
// off-lock, and the background compactor merges the newest segments with
// the tiered policy — without re-evaluating a single hash function,
// because every layer retains its key columns.
//
// The annulus-search veneer is the same AnnulusIndex that serves static
// indexes: dsh.NewDynamicAnnulusIndex wraps the mutating backend in the
// Theorem 6.1 query algorithm unchanged.
//
//	go run ./examples/churn
package main

import (
	"fmt"

	"dsh"
	"dsh/internal/vec"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

func main() {
	rng := xrand.New(7)
	const (
		d      = 32
		topics = 40
	)
	// Same two-level corpus as examples/recommender: within-subtopic pairs
	// are near-duplicates, same-topic cross-subtopic pairs sit in the
	// interesting band, cross-topic pairs are unrelated.
	corpus := workload.NewHierarchicalCorpus(rng, d, topics, 3, 25, 0.16, 0.074)
	n := len(corpus.Points)
	initial := n / 2
	fmt.Printf("corpus: %d articles; indexing the first %d, streaming in the rest\n", n, initial)

	// Annulus family peaking in the "similar but distinct" band.
	const lo, hi = 0.35, 0.65
	ann := dsh.Annulus(d, (lo+hi)/2, 2.2)
	L := dsh.RepetitionsForCPF(ann.CPF().Eval((lo + hi) / 2))
	dx := dsh.NewDynamicIndex(rng, ann, L, corpus.Points[:initial],
		dsh.DynamicOptions{
			MemtableThreshold:    256,
			AsyncFreeze:          true,              // full memtables detach; tables build off-lock
			BackgroundCompaction: true,              // merge when segments pile up...
			Policy:               dsh.CompactTiered, // ...but only the newest similar-sized runs
			MaxSegments:          4,
		})
	defer dx.Close()
	fmt.Printf("dynamic index: L = %d repetitions, %d segment(s)\n\n", L, dx.Segments())

	inBand := func(q, x []float64) bool {
		a := vec.Dot(q, x)
		return a >= lo && a <= hi
	}
	// The Theorem 6.1 annulus veneer over the mutating backend: Query
	// returns the first in-band candidate, scanning at most 8L.
	recommender := dsh.NewDynamicAnnulusIndex(dx, inBand)

	// Publish the rest of the corpus and retract a scattering of old
	// articles; the memtable absorbs inserts, the tombstone bitmap hides
	// retracted articles from queries immediately.
	retracted := 0
	for i := initial; i < n; i++ {
		dx.Insert(corpus.Points[i])
		if i%9 == 0 {
			if dx.Delete(rng.Intn(i)) {
				retracted++
			}
		}
	}
	fmt.Printf("after churn: %d live articles, %d retracted, %d segments + %d memtable entries (%d freezes pending)\n",
		dx.Len(), retracted, dx.Segments(), dx.MemtableLen(), dx.PendingFreezes())

	hits := 0
	const queriesRun = 10
	for qi := 0; qi < queriesRun; qi++ {
		qid := rng.Intn(n)
		for dx.Deleted(qid) {
			qid = rng.Intn(n)
		}
		q := corpus.Points[qid]
		if rec, _ := recommender.Query(q); rec >= 0 {
			hits++
			fmt.Printf("query %d (topic %2d): recommend article %5d (topic %2d, sim %.3f)\n",
				qi, corpus.Topic[qid], rec, corpus.Topic[rec], vec.Dot(q, dx.Point(rec)))
		} else {
			fmt.Printf("query %d (topic %2d): no in-band article found\n", qi, corpus.Topic[qid])
		}
	}
	fmt.Printf("\nfound an in-band recommendation for %d/%d queries during churn\n", hits, queriesRun)

	// Compaction folds segments + memtable into one flat segment, dropping
	// retracted articles from the tables while every surviving article
	// keeps its id — and, because key columns are retained, without
	// hashing any point again. Steady-state queries are then
	// allocation-free.
	dx.Compact()
	fmt.Printf("after compact: %d live articles in %d segment(s), memtable empty=%v\n",
		dx.Len(), dx.Segments(), dx.MemtableLen() == 0)
}
