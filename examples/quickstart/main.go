// Quickstart: sample distance-sensitive hash families, estimate their
// collision probability functions empirically, and compare against the
// analytic CPFs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"dsh"
)

func main() {
	rng := dsh.NewRand(1)
	const d = 256

	// 1. The simplest anti-LSH: Pr[h(x) = g(y)] equals the relative
	//    Hamming distance between x and y (Section 4.1 of the paper).
	anti := dsh.AntiBitSampling(d)
	fmt.Printf("family %s with CPF f(t) = t:\n", anti.Name())
	x := dsh.RandomBits(rng, d)
	for _, r := range []int{0, 64, 128, 192, 256} {
		y := dsh.BitsAtDistance(rng, x, r)
		hits := 0
		const trials = 50000
		for i := 0; i < trials; i++ {
			if anti.Sample(rng).Collides(x, y) {
				hits++
			}
		}
		t := float64(r) / d
		fmt.Printf("  rel. distance %.2f: measured %.4f, analytic %.4f\n",
			t, float64(hits)/trials, anti.CPF().Eval(t))
	}

	// 2. Combinators (Lemma 1.4): a unimodal CPF on the Hamming cube from
	//    bit-sampling x anti bit-sampling: f(t) = (1-t)^2 * t.
	unimodal := dsh.Concat(dsh.Power(dsh.BitSampling(d), 2), dsh.AntiBitSampling(d))
	fmt.Printf("\nconcat CPF f(t) = (1-t)^2 t peaks at t = 1/3:\n")
	for _, t := range []float64{0.1, 1.0 / 3, 0.6, 0.9} {
		fmt.Printf("  f(%.2f) = %.4f\n", t, unimodal.CPF().Eval(t))
	}

	// 3. A unimodal family on the unit sphere (Section 6.2) peaking at
	//    inner product 0.5 -- "close, but not too close".
	ann := dsh.Annulus(32, 0.5, 2)
	f := ann.CPF()
	fmt.Printf("\nannulus family %s:\n", ann.Name())
	for _, a := range []float64{-0.5, 0, 0.25, 0.5, 0.75, 0.95} {
		fmt.Printf("  f(alpha=%+.2f) = %.6f\n", a, f.Eval(a))
	}
	fmt.Println("\nthe CPF peaks at the target similarity and decays in both directions;")
	fmt.Println("this is impossible for any symmetric LSH family.")
}
