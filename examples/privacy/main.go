// Privacy-preserving distance estimation (Section 6.4): two parties decide
// whether their private vectors are within distance r without revealing
// how close they are, by reducing the question to private set intersection
// over DSH hash vectors with a *flat* (step) collision probability.
//
//	go run ./examples/privacy
package main

import (
	"fmt"

	"dsh"
	"dsh/internal/sphere"
	"dsh/internal/vec"
	"dsh/internal/xrand"
)

func main() {
	rng := xrand.New(5)
	const d = 24

	// "Close" means similarity >= 0.5 (distance <= 1 on the sphere);
	// "far" means similarity <= 0 (distance >= sqrt(2)).
	fam := dsh.Step(d, 0.5, 0.9, 4, 2.2)
	fmin, fmax := sphere.PlateauStats(fam.CPF(), 0.5, 0.9, 30)
	pFar := fam.CPF().Eval(0)
	const eps = 0.05

	est, err := dsh.NewDistanceEstimator(rng, fam, fmin, pFar, eps)
	if err != nil {
		panic(err)
	}
	fmt.Printf("step family: plateau [%.4f, %.4f] (ratio %.2f), far CPF %.2g\n",
		fmin, fmax, fmax/fmin, pFar)
	fmt.Printf("protocol: N = %d hash pairs, predicted false-negative <= %.3f, false-positive <= %.3f\n\n",
		est.N(), est.PredictedFalseNegative(), est.PredictedFalsePositive())

	run := func(alpha float64, label string, proto dsh.PSIProtocol) {
		x, q := vec.UnitPairWithDot(rng, d, alpha)
		out, err := est.Estimate(x, q, proto)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-28s alpha=%+.2f -> close=%-5v |intersection|=%-3d transcript=%d bytes\n",
			label+" ("+proto.Name()+"):", alpha, out.Close, out.IntersectionSize, out.TranscriptBytes)
	}

	fmt.Println("single runs over the commutative-encryption PSI (1536-bit group):")
	run(0.8, "same medical cohort", dsh.DHPSI())
	run(0.6, "related cohort", dsh.DHPSI())
	run(-0.3, "unrelated", dsh.DHPSI())

	fmt.Println("\nrepeated runs (plaintext PSI for speed) to show the flat leakage profile:")
	for _, alpha := range []float64{0.85, 0.7, 0.55, 0.0, -0.5} {
		yes, inter := 0, 0
		const reps = 40
		for i := 0; i < reps; i++ {
			x, q := vec.UnitPairWithDot(rng, d, alpha)
			out, err := est.Estimate(x, q, dsh.PlaintextPSI())
			if err != nil {
				panic(err)
			}
			if out.Close {
				yes++
			}
			inter += out.IntersectionSize
		}
		fmt.Printf("  alpha=%+.2f: yes-rate %.2f, mean intersection %.2f\n",
			alpha, float64(yes)/reps, float64(inter)/reps)
	}
	fmt.Println("\nwithin the close band the intersection size barely varies with alpha:")
	fmt.Println("an eavesdropper (or the other party) learns *whether* the points are close,")
	fmt.Println("but essentially nothing about how close -- unlike standard LSH, whose")
	fmt.Println("collision counts grow as points approach (the triangulation attack).")
}
