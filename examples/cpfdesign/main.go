// CPF design: pick a target collision probability function and let the
// library find a mixture of concrete DSH families realizing it
// (Lemma 1.4 closure + constrained least squares).
//
//	go run ./examples/cpfdesign
package main

import (
	"fmt"
	"math"
	"strings"

	"dsh"
)

func main() {
	const d = 256

	// Target: a bump peaked at relative Hamming distance 1/3 -- a CPF for
	// "find points at distance about d/3", unreachable by any symmetric
	// LSH (whose CPFs are monotone).
	target := func(t float64) float64 {
		return 0.12 * math.Exp(-8*(t-1.0/3)*(t-1.0/3))
	}

	res, err := dsh.FitCPF(4,
		dsh.FitGrid(0, 1, 33, target),
		dsh.BitSampling(d),
		dsh.AntiBitSampling(d),
		dsh.Concat(dsh.BitSampling(d), dsh.AntiBitSampling(d)),
		dsh.Concat(dsh.Power(dsh.BitSampling(d), 2), dsh.AntiBitSampling(d)),
	)
	if err != nil {
		panic(err)
	}
	nonzero := 0
	for _, w := range res.Weights {
		if w > 0 {
			nonzero++
		}
	}
	fmt.Printf("fitted %d-component mixture: mass %.3f, max error %.4f, rmse %.4f\n\n",
		nonzero, res.Mass, res.MaxErr, res.RMSE)

	fmt.Println("  t      target   fitted    (ascii)")
	f := res.Family.CPF()
	for t := 0.0; t <= 1.001; t += 0.0625 {
		got := f.Eval(t)
		bar := strings.Repeat("#", int(got*400))
		fmt.Printf("  %.3f  %.4f   %.4f   %s\n", t, target(t), got, bar)
	}

	// The fitted family is a real, samplable DSH family: verify by
	// Monte-Carlo at the peak.
	rng := dsh.NewRand(1)
	x := dsh.RandomBits(rng, d)
	y := dsh.BitsAtDistance(rng, x, d/3)
	hits := 0
	const trials = 50000
	for i := 0; i < trials; i++ {
		if res.Family.Sample(rng).Collides(x, y) {
			hits++
		}
	}
	fmt.Printf("\nempirical collision rate at t=1/3: %.4f (analytic %.4f)\n",
		float64(hits)/trials, f.Eval(1.0/3))
	fmt.Println("\nno symmetric LSH family can produce this unimodal CPF;")
	fmt.Println("the mixture of asymmetric (anti) bit-sampling powers realizes it directly.")
}
