// Annulus search (Sections 6.1-6.2): find a point whose similarity to the
// query lies in a target band, comparing three structures:
//
//   - the DSH unimodal annulus index (Theorem 6.4),
//
//   - the [41]-style baseline (concatenated LSH x anti-LSH),
//
//   - a brute-force linear scan.
//
//     go run ./examples/annulus
package main

import (
	"fmt"
	"time"

	"dsh"
	"dsh/internal/index"
	"dsh/internal/vec"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

func main() {
	rng := xrand.New(3)
	const (
		d         = 24
		n         = 30000
		alphaPeak = 0.5
	)
	within := func(q, x []float64) bool {
		a := vec.Dot(q, x)
		return a >= 0.35 && a <= 0.65
	}

	fmt.Printf("dataset: %d uniform points on S^%d plus one planted point at alpha = %.2f\n\n",
		n, d-1, alphaPeak)

	ann := dsh.Annulus(d, alphaPeak, 2.2)
	L := dsh.RepetitionsForCPF(ann.CPF().Eval(alphaPeak))
	baseCPF := index.ConcatAnnulusCPF(6, 2)
	Lbase := dsh.RepetitionsForCPF(baseCPF.Eval(alphaPeak))

	alphaLo, alphaHi := dsh.AnnulusBounds(alphaPeak, 2)
	fmt.Printf("DSH annulus family: L=%d, Theorem 6.2 interval (s=2): [%.3f, %.3f]\n",
		L, alphaLo, alphaHi)
	fmt.Printf("[41]-style baseline (simhash^6 x antisimhash^2): L=%d\n\n", Lbase)

	const trials = 5
	type tally struct {
		hits, cands int
		elapsed     time.Duration
	}
	var dshT, baseT, scanT tally
	for i := 0; i < trials; i++ {
		ds := workload.NewPlantedSphere(rng, d, n, []float64{alphaPeak})

		t0 := time.Now()
		ai := index.NewAnnulus[[]float64](rng, ann, L, ds.Points, within)
		id, st := ai.Query(ds.Query)
		dshT.elapsed += time.Since(t0)
		dshT.cands += st.Candidates
		if id >= 0 {
			dshT.hits++
		}

		t0 = time.Now()
		bi := index.ConcatAnnulusBaseline(rng, d, 6, 2, Lbase, ds.Points, within)
		id, st = bi.Query(ds.Query)
		baseT.elapsed += time.Since(t0)
		baseT.cands += st.Candidates
		if id >= 0 {
			baseT.hits++
		}

		t0 = time.Now()
		ls := index.NewLinearScan(ds.Points)
		id, st = ls.Query(ds.Query, within)
		scanT.elapsed += time.Since(t0)
		scanT.cands += st.Candidates
		if id >= 0 {
			scanT.hits++
		}
	}
	report := func(name string, t tally) {
		fmt.Printf("%-18s recall %d/%d, avg candidates %6.0f (%.2f%% of n), avg build+query %v\n",
			name, t.hits, trials, float64(t.cands)/trials,
			100*float64(t.cands)/trials/float64(n), t.elapsed/time.Duration(trials))
	}
	report("dsh-annulus:", dshT)
	report("pagh17-baseline:", baseT)
	report("linear-scan:", scanT)
	fmt.Println("\nboth hash structures verify a vanishing fraction of the dataset per query")
	fmt.Println("(Theorem 6.1 guarantees recall >= 1/2 per query; the scan is exact but linear).")
}
