// Dynrange: output-sensitive range reporting over a mutating index. A
// fleet of sensors streams readings embedded on the unit sphere; an
// operator repeatedly asks "every reading similar to this one" while new
// readings arrive and stale ones are retired. dsh.NewDynamicRangeReporter
// wraps a DynamicIndex in the Theorem 6.5 reporting algorithm — the same
// RangeReporter veneer that serves static indexes — so the report set
// tracks the live corpus: freshly inserted readings appear immediately,
// retired ones vanish immediately, and background tiered compaction keeps
// the layer count (visible in QueryStats.Probes) bounded without ever
// re-hashing a reading.
//
//	go run ./examples/dynrange
package main

import (
	"fmt"

	"dsh"
	"dsh/internal/vec"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

func main() {
	rng := xrand.New(11)
	const d = 24
	// Readings cluster around per-sensor centroids, so "similar readings"
	// is a real report set: same-sensor readings sit well inside the band.
	corpus := workload.NewArticleCorpus(rng, d, 60, 60, 0.12)
	pts := corpus.Points
	// Shuffle so every sensor's readings arrive spread across the stream:
	// the probe's report set keeps growing as its peers are ingested.
	for i := len(pts) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		pts[i], pts[j] = pts[j], pts[i]
	}
	initial := len(pts) / 3
	stream := len(pts) - initial

	// Step-function CPF, flat over the report band [0.6, 0.9]: every
	// in-band reading is reported with probability >= 1 - (1-fmin)^L.
	// L = 2/f(0.9) pushes the per-reading recall near 90%.
	const bandLo = 0.6
	fam := dsh.Step(d, bandLo, 0.9, 3, 1.4)
	L := 2 * dsh.RepetitionsForCPF(fam.CPF().Eval(0.9))
	dx := dsh.NewDynamicIndex(rng, fam, L, pts[:initial],
		dsh.DynamicOptions{
			MemtableThreshold:    200,
			AsyncFreeze:          true,
			BackgroundCompaction: true,
			Policy:               dsh.CompactTiered,
			MaxSegments:          4,
		})
	defer dx.Close()

	inBand := func(q, x []float64) bool { return vec.Dot(q, x) >= bandLo }
	rr := dsh.NewDynamicRangeReporter(dx, inBand)

	fmt.Printf("reporting over a live corpus: %d initial readings, %d streaming in\n\n", initial, stream)

	// Interleave ingestion with reporting: after every chunk of inserts
	// (plus a few retirements), re-run the same probe query and watch the
	// report set and the layering change underneath it.
	probe := pts[0]
	var dst []int
	for step := 0; step <= 4; step++ {
		if step > 0 {
			lo := initial + (step-1)*stream/4
			hi := initial + step*stream/4
			for i := lo; i < hi; i++ {
				dx.Insert(pts[i])
				if i%13 == 0 {
					dx.Delete(rng.Intn(i))
				}
			}
		}
		var stats dsh.QueryStats
		dst, stats = rr.AppendQuery(dst[:0], probe)
		verified := 0
		for _, id := range dst {
			if inBand(probe, dx.Point(id)) {
				verified++
			}
		}
		fmt.Printf("step %d: live=%5d segments=%d memtable=%3d | reported %3d in-band readings (probes=%d, candidates=%d)\n",
			step, dx.Len(), dx.Segments(), dx.MemtableLen(), verified, stats.Probes, stats.Candidates)
	}

	// A full compact collapses the layers; the report set is unchanged
	// (deleted readings were already invisible) but each repetition now
	// probes a single flat table.
	before, _ := rr.Query(probe)
	dx.Compact()
	after, stats := rr.Query(probe)
	fmt.Printf("\nafter compact: segments=%d, %d reported (was %d), probes/query=%d\n",
		dx.Segments(), len(after), len(before), stats.Probes)
	if len(after) == len(before) {
		fmt.Println("report set unchanged across compaction, as it must be")
	}
}
