// Sharded: multi-writer serving with snapshot-isolated scans. A single
// DynamicIndex serializes every mutation on one RWMutex; under several
// concurrent writer threads that lock becomes the bottleneck.
// dsh.NewShardedDynamicIndex partitions points by id across K independent
// shards — each with its own memtable, segments, freezer and compactor —
// so writers on different shards never contend, while queries probe every
// shard with the same per-repetition key and return exactly the candidate
// sets a single index would.
//
// Snapshot() pins a point-in-time view of every shard — a single instant
// across all of them, enforced by an epoch-barrier protocol: the
// analytics scan below iterates a frozen id set and re-runs the same
// queries with identical results while the writers keep mutating the
// live index.
//
// The second half shows the keyed serving mode: RouteHash routes every
// external key to a fixed shard so InsertKeyed is an atomic upsert, and
// the leveled compaction policy garbage-collects the dead versions that
// upsert churn leaves behind (watch GCStats before and after Compact).
//
//	go run ./examples/sharded
package main

import (
	"fmt"
	"sync"
	"time"

	"dsh"
	"dsh/internal/vec"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

func main() {
	rng := xrand.New(7)
	const (
		d       = 32
		n       = 6000
		shards  = 4
		writers = 4
	)
	points := workload.SpherePoints(rng, n, d)
	initial := n / 2

	// SimHash^6 keeps collision sets selective at this corpus size.
	fam := dsh.Power(dsh.SimHash(d), 6)
	const L = 32
	sx := dsh.NewShardedDynamicIndex(rng, fam, L, points[:initial], dsh.ShardOptions{
		Shards: shards,
		Dynamic: dsh.DynamicOptions{
			MemtableThreshold:    256,
			AsyncFreeze:          true,
			BackgroundCompaction: true,
			Policy:               dsh.CompactTiered,
		},
	})
	defer sx.Close()
	fmt.Printf("sharded index: %d shards x L=%d repetitions, %d initial points\n",
		sx.Shards(), sx.L(), sx.Len())

	// A snapshot pins the current live set before the writers start: the
	// scan results below must not move, no matter what lands meanwhile.
	snap := sx.Snapshot()
	query := points[0]
	pinnedIDs := snap.AppendLiveIDs(nil)
	pinnedRes := snap.CollectDistinct(query, 0)
	fmt.Printf("snapshot: pinned %d live ids, query sees %d candidates\n",
		len(pinnedIDs), len(pinnedRes))

	// Four writers stream in the second half concurrently, each deleting
	// a quarter of what it has seen; different shards, no lock contention.
	start := time.Now()
	var wg sync.WaitGroup
	per := (n - initial) / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mrng := xrand.New(uint64(100 + w))
			for i := 0; i < per; i++ {
				id := sx.Insert(points[initial+w*per+i])
				if mrng.Bernoulli(0.25) {
					sx.Delete(mrng.Intn(id + 1))
				}
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("writers: %d concurrent goroutines inserted %d points in %v (live=%d)\n",
		writers, n-initial, time.Since(start).Round(time.Millisecond), sx.Len())

	// The snapshot still answers from the pinned state...
	afterIDs := snap.AppendLiveIDs(nil)
	afterRes := snap.CollectDistinct(query, 0)
	fmt.Printf("snapshot after churn: %d live ids (unchanged=%v), %d candidates (unchanged=%v)\n",
		len(afterIDs), equalInts(afterIDs, pinnedIDs), len(afterRes), equalInts(afterRes, pinnedRes))
	snap.Release()

	// ...while the live index serves the new reality. The range-reporting
	// veneer binds to the sharded backend through the same Source handle
	// every backend implements.
	const minSim = 0.55
	rr := dsh.NewRangeReporterOver[[]float64](sx, func(q, x []float64) bool {
		return vec.Dot(q, x) >= minSim
	})
	ids, stats := rr.Query(query)
	fmt.Printf("live range query: %d reported >= %.2f similarity (%d probes across all shards)\n",
		len(ids), minSim, stats.Probes)

	sx.Compact()
	_, stats = rr.Query(query)
	fmt.Printf("after Compact: same query, %d probes (L x %d shards)\n", stats.Probes, sx.Shards())

	// --- Keyed serving: hash routing + leveled GC -----------------------
	// A catalog of `docs` documents, each re-published (upserted) several
	// times under its stable external key. RouteHash sends a key to shard
	// mix(key) mod K, so replacing a document is atomic under one shard
	// lock; CompactLeveled garbage-collects the superseded versions.
	const docs = 1500
	krng := xrand.New(8)
	kx := dsh.NewShardedDynamicIndex(krng, fam, L, nil, dsh.ShardOptions{
		Shards:  shards,
		Routing: dsh.RouteHash,
		Dynamic: dsh.DynamicOptions{
			MemtableThreshold: 256,
			AsyncFreeze:       true,
			Policy:            dsh.CompactLeveled,
		},
	})
	defer kx.Close()
	versions := workload.SpherePoints(krng, 4*docs, d)
	for round := 0; round < 4; round++ {
		for doc := 0; doc < docs; doc++ {
			kx.InsertKeyed(uint64(doc), versions[round*docs+doc])
		}
	}
	st := kx.GCStats()
	fmt.Printf("keyed: %d docs x 4 upserts -> live=%d dead=%d bitmap=%dB\n",
		docs, st.LiveRows, st.DeadRows, st.BitmapBytes)

	kx.Compact()
	st = kx.GCStats()
	fmt.Printf("after leveled GC: live=%d dead=%d bitmap=%dB (collected=%d rows, reclaimed=%dB)\n",
		st.LiveRows, st.DeadRows, st.BitmapBytes, st.CollectedRows, st.ReclaimedBitmapBytes)

	// Every key resolves to exactly its latest version, GC or not.
	if id, ok := kx.LookupKey(42); ok {
		fmt.Printf("doc 42 currently lives at id %d; latest-version match=%v\n",
			id, equalFloats(kx.Point(id), versions[3*docs+42]))
	}
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
