// Spherical range reporting (Section 6.3, Theorem 6.5): report *all*
// points within a similarity threshold of the query. Classical LSH wastes
// work re-finding very close points in almost every repetition; a
// step-function CPF (flat over the reporting range) is output-sensitive.
//
//	go run ./examples/rangereport
package main

import (
	"fmt"
	"math"

	"dsh"
	"dsh/internal/index"
	"dsh/internal/sphere"
	"dsh/internal/vec"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

func main() {
	rng := xrand.New(9)
	const (
		d        = 24
		nNoise   = 5000
		alphaMin = 0.75
	)
	// Plant a cluster of 30 close points at various similarities.
	var alphas []float64
	for i := 0; i < 30; i++ {
		alphas = append(alphas, 0.76+0.007*float64(i))
	}
	ds := workload.NewPlantedSphere(rng, d, nNoise, alphas)
	inRange := func(q, x []float64) bool { return vec.Dot(q, x) >= alphaMin }
	truth := workload.ScanSphereRange(ds.Points, ds.Query, alphaMin)
	fmt.Printf("dataset: %d points, %d within similarity %.2f of the query\n\n",
		len(ds.Points), len(truth), alphaMin)

	// Step-CPF reporter (Theorem 6.5).
	step := dsh.Step(d, alphaMin, 0.97, 5, 2.0)
	fmin, fmax := sphere.PlateauStats(step.CPF(), alphaMin, 0.97, 30)
	L := dsh.RepetitionsForCPF(fmin) * 2
	rr := dsh.NewRangeReporter(rng, step, L, ds.Points, inRange)
	got, st := rr.Query(ds.Query)
	fmt.Printf("step-CPF reporter: plateau fmax/fmin = %.2f, L = %d\n", fmax/fmin, L)
	fmt.Printf("  reported %d/%d points; %d candidate probes, %d distinct verified\n",
		len(got), len(truth), st.Candidates, st.Distinct)
	fmt.Printf("  work per reported point: %.1f probes\n\n", float64(st.Candidates)/math.Max(1, float64(len(got))))

	// Classical LSH reporter: powered SimHash tuned for the range edge.
	k := 14
	fEdge := math.Pow(sphere.SimHashCPF(alphaMin), float64(k))
	Lcls := dsh.RepetitionsForCPF(fEdge) * 2
	classical := dsh.Power(dsh.SimHash(d), k)
	rrCls := index.NewRangeReporter[[]float64](rng, classical, Lcls, ds.Points, inRange)
	gotCls, stCls := rrCls.Query(ds.Query)
	fmt.Printf("classical simhash^%d reporter: L = %d\n", k, Lcls)
	fmt.Printf("  reported %d/%d points; %d candidate probes, %d distinct verified\n",
		len(gotCls), len(truth), stCls.Candidates, stCls.Distinct)
	fmt.Printf("  work per reported point: %.1f probes\n\n", float64(stCls.Candidates)/math.Max(1, float64(len(gotCls))))

	fmt.Println("the classical CPF rises toward 1 as similarity -> 1, so the closest points")
	fmt.Println("collide in nearly every repetition and are re-retrieved L times; the step")
	fmt.Println("CPF caps every in-range point's collision rate near fmin (Theorem 6.5).")
}
