package dsh_test

import (
	"math"
	"sync"
	"testing"

	"dsh"
)

// TestMetricsChurnSeriesAdvance drives a durable sharded index through
// concurrent keyed inserts, deletes, queries and snapshots, then a
// leveled GC compaction and a sealing Close, and asserts that every
// lifecycle series of the metrics plane advanced between two
// dsh.Metrics() snapshots: query, write, freeze, compaction, GC,
// snapshot-barrier and WAL-fsync. Run it under -race to double as the
// data-race check on the striped recorders.
func TestMetricsChurnSeriesAdvance(t *testing.T) {
	const (
		dim      = 16
		L        = 8
		writers  = 2
		perGoro  = 300
		queriers = 2
	)
	rng := dsh.NewRand(11)
	fam := dsh.Power(dsh.SimHash(dim), 4)
	points := make([][]float64, writers*perGoro)
	for i := range points {
		points[i] = randUnit(rng, dim)
	}

	before := dsh.Metrics()

	sx, err := dsh.NewDurableShardedIndex(t.TempDir(), 11, fam, L, dsh.Float64Codec{},
		dsh.ShardOptions{
			Shards:  2,
			Routing: dsh.RouteHash,
			Dynamic: dsh.DynamicOptions{
				MemtableThreshold: 32,
				Policy:            dsh.CompactLeveled,
			},
		},
		dsh.DurableOptions{Fsync: dsh.FsyncAlways})
	if err != nil {
		t.Fatalf("NewDurableShardedIndex: %v", err)
	}

	// Churn: concurrent keyed upserts with trailing deletes, concurrent
	// point queries, and a snapshot stream that pins and releases global
	// views while the writers run.
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				key := uint64(w*perGoro + i)
				sx.InsertKeyed(key, points[key])
				if i%3 == 2 {
					sx.DeleteKeyed(key - 1)
				}
			}
		}(w)
	}
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			qr := sx.NewQuerier()
			for i := 0; i < 50; i++ {
				qr.CollectDistinct(points[(q*37+i*13)%len(points)], 0)
			}
		}(q)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			snap := sx.Snapshot()
			snap.CollectDistinct(points[i], 4)
			snap.Release()
		}
	}()
	wg.Wait()

	// Leveled Compact is the bottom-level GC merge: with tombstones
	// present it must drop rows and advance the GC series.
	sx.Compact()
	sx.Close()

	after := dsh.Metrics()
	delta := func(name string) uint64 { return after.Counters[name] - before.Counters[name] }
	mustAdvance := func(names ...string) {
		t.Helper()
		var sum uint64
		for _, n := range names {
			if _, ok := after.Counters[n]; !ok {
				t.Fatalf("series %q is not registered", n)
			}
			sum += delta(n)
		}
		if sum == 0 {
			t.Errorf("series %v did not advance", names)
		}
	}

	mustAdvance("dsh_queries_total")
	mustAdvance("dsh_query_probes_total")
	mustAdvance("dsh_query_hash_evals_total")
	mustAdvance("dsh_upserts_total")
	mustAdvance("dsh_deletes_keyed_total")
	mustAdvance("dsh_freezes_inline_total", "dsh_freezes_async_total", "dsh_freeze_installs_total")
	mustAdvance("dsh_frozen_rows_total")
	mustAdvance("dsh_compactions_gc_total")
	mustAdvance("dsh_gc_collected_rows_total")
	mustAdvance("dsh_snapshots_total")
	mustAdvance("dsh_snapshot_optimistic_total", "dsh_snapshot_fallback_total")
	mustAdvance("dsh_wal_appends_total")
	mustAdvance("dsh_wal_fsyncs_total")
	mustAdvance("dsh_segment_writes_total")
	mustAdvance("dsh_manifest_commits_total")

	if got, want := after.Gauges["dsh_snapshots_open"], before.Gauges["dsh_snapshots_open"]; got != want {
		t.Errorf("dsh_snapshots_open = %d after releasing every snapshot, want %d", got, want)
	}
	if after.Gauges["dsh_durable_faults"] != before.Gauges["dsh_durable_faults"] {
		t.Errorf("dsh_durable_faults advanced on a healthy store")
	}
	if h := after.Histograms["dsh_query_latency_ns"]; h.Count == before.Histograms["dsh_query_latency_ns"].Count {
		t.Errorf("dsh_query_latency_ns recorded no observations")
	}
	if len(after.Events) == 0 {
		t.Errorf("event trace is empty after churn")
	}
}

func randUnit(rng *dsh.Rand, dim int) []float64 {
	v := make([]float64, dim)
	var norm float64
	for i := range v {
		v[i] = rng.NormFloat64()
		norm += v[i] * v[i]
	}
	n := math.Sqrt(norm)
	for i := range v {
		v[i] /= n
	}
	return v
}
