package dsh_test

import (
	"math"
	"testing"

	"dsh"
)

func TestQuickstartFlow(t *testing.T) {
	rng := dsh.NewRand(1)
	fam := dsh.AntiBitSampling(256)
	x := dsh.RandomBits(rng, 256)
	y := dsh.BitsAtDistance(rng, x, 64) // relative distance 0.25
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if fam.Sample(rng).Collides(x, y) {
			hits++
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.25) > 0.02 {
		t.Errorf("collision rate %v, want ~0.25", p)
	}
}

func TestFacadeCombinators(t *testing.T) {
	fam := dsh.Concat(dsh.BitSampling(128), dsh.AntiBitSampling(128))
	if got := fam.CPF().Eval(0.5); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("concat CPF = %v", got)
	}
	pow := dsh.Power(dsh.BitSampling(128), 2)
	if got := pow.CPF().Eval(0.5); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("power CPF = %v", got)
	}
	mix := dsh.Mixture(
		[]dsh.Family[dsh.BitVector]{dsh.BitSampling(128), dsh.AntiBitSampling(128)},
		[]float64{0.5, 0.5},
	)
	if got := mix.CPF().Eval(0.3); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("mixture CPF = %v", got)
	}
}

func TestFacadeSphereFamilies(t *testing.T) {
	if f := dsh.SimHash(16).CPF().Eval(0); math.Abs(f-0.5) > 1e-12 {
		t.Errorf("SimHash CPF(0) = %v", f)
	}
	fm := dsh.FilterMinus(16, 1.5)
	fp := dsh.FilterPlus(16, 1.5)
	for _, a := range []float64{-0.5, 0, 0.5} {
		if math.Abs(fp.ExactCPF(a)-fm.ExactCPF(-a)) > 1e-14 {
			t.Error("filter mirror identity broken through facade")
		}
	}
	ann := dsh.Annulus(16, 0.3, 1.5)
	if ann.AlphaMax() != 0.3 {
		t.Error("annulus alphaMax lost")
	}
	lo, hi := dsh.AnnulusBounds(0, 2)
	if lo >= hi {
		t.Error("annulus bounds inverted")
	}
}

func TestFacadeFastHashFamilies(t *testing.T) {
	rng := dsh.NewRand(5)
	fast := dsh.FastCrossPolytope(24)
	anti := dsh.FastAntiCrossPolytope(24)
	// Padded to n=32, the asymptotic CPF mirrors between the fast pair.
	if f, g := fast.CPF().Eval(0.4), anti.CPF().Eval(-0.4); math.Abs(f-g) > 1e-14 {
		t.Errorf("fast CP mirror identity broken: %v vs %v", f, g)
	}
	pair := fast.Sample(rng)
	bh, ok := pair.H.(dsh.BatchHasher[[]float64])
	if !ok {
		t.Fatal("FastCrossPolytope hasher should implement dsh.BatchHasher")
	}
	pts := make([][]float64, 9)
	for i := range pts {
		p := make([]float64, 24)
		var norm float64
		for j := range p {
			p[j] = rng.NormFloat64()
			norm += p[j] * p[j]
		}
		norm = math.Sqrt(norm)
		for j := range p {
			p[j] /= norm
		}
		pts[i] = p
	}
	keys := make([]uint64, len(pts))
	bh.HashBatch(pts, keys)
	for i, p := range pts {
		if keys[i] != pair.H.Hash(p) {
			t.Fatal("HashBatch keys differ from Hash through the facade")
		}
	}

	packed := dsh.PackedSimHash(24, 6)
	power := dsh.Power(dsh.SimHash(24), 6)
	for _, a := range []float64{-0.5, 0, 0.6} {
		if math.Abs(packed.CPF().Eval(a)-power.CPF().Eval(a)) > 1e-12 {
			t.Errorf("PackedSimHash CPF differs from Power(SimHash) at %v", a)
		}
	}
	if _, ok := packed.Sample(rng).H.(dsh.BatchHasher[[]float64]); !ok {
		t.Fatal("PackedSimHash hasher should implement dsh.BatchHasher")
	}
}

func TestFacadePolynomialFamilies(t *testing.T) {
	p := dsh.NewPolynomial(0.5, 1) // t + 0.5
	scheme, err := dsh.PolynomialFamily(64, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scheme.Delta-2) > 1e-9 {
		t.Errorf("Delta = %v", scheme.Delta)
	}
	mono, err := dsh.MonotonePolynomialFamily(64, dsh.NewPolynomial(0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if got := mono.CPF().Eval(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("monotone CPF(1) = %v", got)
	}
	val, err := dsh.Valiant(4, dsh.NewPolynomial(0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := val.CPF().Eval(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("valiant CPF(0) = %v", got)
	}
}

func TestFacadeEuclid(t *testing.T) {
	fam := dsh.NewPStable(8, 3, 1)
	if fam.K() != 3 || fam.W() != 1 {
		t.Error("pstable params lost")
	}
	if fam.ExactCPF(0) != 0 {
		t.Error("pstable CPF(0) should be 0 for k>0")
	}
}

func TestFacadeIndexAndPrivacy(t *testing.T) {
	rng := dsh.NewRand(2)
	pts := make([][]float64, 50)
	for i := range pts {
		g := make([]float64, 8)
		for j := range g {
			g[j] = rng.NormFloat64()
		}
		n := 0.0
		for _, v := range g {
			n += v * v
		}
		n = math.Sqrt(n)
		for j := range g {
			g[j] /= n
		}
		pts[i] = g
	}
	ix := dsh.NewIndex(rng, dsh.SimHash(8), 4, pts)
	if ix.L() != 4 || ix.Len() != 50 {
		t.Error("index sizes wrong")
	}
	if dsh.RepetitionsForCPF(0.25) != 4 {
		t.Error("RepetitionsForCPF wrong")
	}
	est, err := dsh.NewDistanceEstimator(rng, dsh.SimHash(8), 0.3, 0.1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := est.Estimate(pts[0], pts[0], dsh.PlaintextPSI())
	if err != nil {
		t.Fatal(err)
	}
	// Identical points collide in every repetition under SimHash.
	if !out.Close || out.IntersectionSize != est.N() {
		t.Errorf("self-estimate: %+v with N=%d", out, est.N())
	}
}

func TestFacadeBatchQuery(t *testing.T) {
	rng := dsh.NewRand(5)
	pts := make([][]float64, 300)
	for i := range pts {
		g := make([]float64, 16)
		n := 0.0
		for j := range g {
			g[j] = rng.NormFloat64()
			n += g[j] * g[j]
		}
		n = math.Sqrt(n)
		for j := range g {
			g[j] /= n
		}
		pts[i] = g
	}
	ix := dsh.NewIndex(rng, dsh.Power(dsh.SimHash(16), 4), 16, pts)
	queries := pts[:32]
	ids, per, agg := ix.QueryBatch(queries, dsh.BatchOptions{Workers: 4})
	if len(ids) != len(queries) || len(per) != len(queries) || agg.Queries != len(queries) {
		t.Fatalf("batch sizes wrong: %d/%d/%d", len(ids), len(per), agg.Queries)
	}
	for i, q := range queries {
		want := ix.CollectDistinct(q, 0)
		if len(want) != len(ids[i]) {
			t.Errorf("query %d: batch returned %d ids, sequential %d", i, len(ids[i]), len(want))
		}
		// Every query is an indexed point, so it must at least find itself.
		found := false
		for _, id := range ids[i] {
			if id == i {
				found = true
			}
		}
		if !found {
			t.Errorf("query %d did not find itself", i)
		}
	}
	if agg.LatP50 > agg.LatMax {
		t.Errorf("latency percentiles out of order: %+v", agg)
	}

	verify := func(a, b []float64) bool {
		dot := 0.0
		for k := range a {
			dot += a[k] * b[k]
		}
		return dot >= 0.4
	}
	seq, seqStats := dsh.Join(dsh.NewRand(6), dsh.Power(dsh.SimHash(16), 3), 8, pts, pts[:100], verify)
	par, parStats := dsh.JoinParallel(dsh.NewRand(6), dsh.Power(dsh.SimHash(16), 3), 8, pts, pts[:100], verify, 4)
	if len(seq) != len(par) || seqStats != parStats {
		t.Errorf("JoinParallel diverged from Join: %d/%d pairs, stats %+v vs %+v",
			len(par), len(seq), parStats, seqStats)
	}
}

func TestFacadeDynamicIndex(t *testing.T) {
	rng := dsh.NewRand(9)
	unit := func() []float64 {
		g := make([]float64, 16)
		n := 0.0
		for j := range g {
			g[j] = rng.NormFloat64()
			n += g[j] * g[j]
		}
		n = math.Sqrt(n)
		for j := range g {
			g[j] /= n
		}
		return g
	}
	pts := make([][]float64, 200)
	for i := range pts {
		pts[i] = unit()
	}
	dx := dsh.NewDynamicIndex(rng, dsh.Power(dsh.SimHash(16), 4), 12, pts[:100],
		dsh.DynamicOptions{MemtableThreshold: 32})
	for _, p := range pts[100:] {
		dx.Insert(p)
	}
	if dx.Len() != 200 {
		t.Fatalf("Len = %d", dx.Len())
	}
	if !dx.Delete(0) || dx.Delete(0) {
		t.Fatal("Delete semantics wrong through the facade")
	}
	dx.Compact()
	if dx.Segments() != 1 || dx.Len() != 199 {
		t.Fatalf("post-compact: segments=%d len=%d", dx.Segments(), dx.Len())
	}
	// A point finds itself; the deleted point never appears.
	qr := dx.NewQuerier()
	ids, _ := qr.CollectDistinct(pts[5], 0)
	found := false
	for _, id := range ids {
		if id == 0 {
			t.Fatal("deleted id reported")
		}
		if id == 5 {
			found = true
		}
	}
	if !found {
		t.Fatal("point 5 not retrievable")
	}
	got, per, agg := dx.QueryBatch(pts[:16], dsh.BatchOptions{Workers: 4})
	if len(got) != 16 || len(per) != 16 || agg.Queries != 16 {
		t.Fatalf("batch sizes wrong: %d/%d/%d", len(got), len(per), agg.Queries)
	}
}

// TestFacadeDynamicVeneers drives the unified serving veneers through the
// public API: annulus search and range reporting over a mutating
// DynamicIndex with async freezing and tiered background compaction.
func TestFacadeDynamicVeneers(t *testing.T) {
	rng := dsh.NewRand(13)
	unit := func() []float64 {
		g := make([]float64, 16)
		n := 0.0
		for j := range g {
			g[j] = rng.NormFloat64()
			n += g[j] * g[j]
		}
		n = math.Sqrt(n)
		for j := range g {
			g[j] /= n
		}
		return g
	}
	pts := make([][]float64, 400)
	for i := range pts {
		pts[i] = unit()
	}
	dx := dsh.NewDynamicIndex(rng, dsh.Power(dsh.SimHash(16), 4), 16, pts[:200],
		dsh.DynamicOptions{
			MemtableThreshold:    64,
			AsyncFreeze:          true,
			BackgroundCompaction: true,
			Policy:               dsh.CompactTiered,
			MaxSegments:          3,
		})
	defer dx.Close()

	anything := func(q, x []float64) bool { return true }
	ai := dsh.NewDynamicAnnulusIndex(dx, anything)
	rr := dsh.NewDynamicRangeReporter(dx, anything)
	if ai.Dynamic() != dx || rr.Dynamic() != dx || ai.Index() != nil {
		t.Fatal("veneer backend accessors wrong through the facade")
	}

	for _, p := range pts[200:] {
		dx.Insert(p)
	}
	dx.Delete(7)

	if id, stats := ai.Query(pts[5]); id < 0 || stats.Verified == 0 {
		t.Fatalf("dynamic annulus found nothing: id=%d stats=%+v", id, stats)
	}
	ids, stats := rr.Query(pts[5])
	if stats.Probes == 0 {
		t.Fatalf("range stats missing probes: %+v", stats)
	}
	self := false
	for _, id := range ids {
		if id == 7 {
			t.Fatal("deleted id reported through the range veneer")
		}
		if id == 5 {
			self = true
		}
	}
	if !self {
		t.Fatal("point 5 did not report itself")
	}

	dx.Compact()
	if got, _ := rr.Query(pts[5]); len(got) != len(ids) {
		t.Fatalf("report set changed across compaction: %d != %d", len(got), len(ids))
	}
}
