// Package dsh is a from-scratch Go implementation of Distance-Sensitive
// Hashing (Aumüller, Christiani, Pagh, Silvestri; PODS 2018): distributions
// over *pairs* of hash functions (h, g) whose collision probability
// Pr[h(x) = g(y)] is a prescribed function f -- the collision probability
// function (CPF) -- of dist(x, y).
//
// Classical locality-sensitive hashing is the symmetric special case h = g
// with a decreasing CPF. The asymmetry unlocks increasing ("anti-LSH"),
// unimodal, polynomial, and step-shaped CPFs, with applications to annulus
// search, hyperplane queries, output-sensitive range reporting, and
// privacy-preserving distance estimation -- all implemented here.
//
// # Layout
//
// This root package re-exports the library's public API. The pieces live in
// focused subpackages:
//
//   - Framework (Definition 1.1, Lemma 1.4): Family, Pair, CPF, Concat,
//     Power, Mixture, and the Monte-Carlo CPF estimation harness.
//   - Hamming space (Sections 4.1, 5): BitSampling, AntiBitSampling,
//     PolynomialFamily (Theorem 5.2), MonotonePolynomialFamily.
//   - Unit sphere (Sections 2, 5, 6.2): SimHash, CrossPolytope and
//     AntiCrossPolytope, FilterPlus/FilterMinus (Theorem 1.2), NewAnnulus
//     (Section 6.2), NewStep, NewValiant (Theorem 5.1).
//   - Euclidean space (Section 4.2): NewPStable (Theorem 4.1).
//   - Applications (Section 6): index structures for annulus search and
//     range reporting, and the PSI-based private distance estimator.
//
// # Quickstart
//
//	rng := dsh.NewRand(1)
//	fam := dsh.AntiBitSampling(256)          // CPF f(t) = t
//	pair := fam.Sample(rng)                  // one (h, g) draw
//	x := dsh.RandomBits(rng, 256)
//	y := dsh.BitsAtDistance(rng, x, 64)      // relative distance 0.25
//	_ = pair.Collides(x, y)                  // true with probability 0.25
//
// See the examples/ directory for runnable programs and cmd/dshbench for
// the experiment harness that reproduces every figure of the paper.
package dsh

import (
	"time"

	"dsh/internal/bitvec"
	"dsh/internal/core"
	"dsh/internal/cpfit"
	"dsh/internal/durable"
	"dsh/internal/euclid"
	"dsh/internal/hamming"
	"dsh/internal/index"
	"dsh/internal/kde"
	"dsh/internal/obs"
	"dsh/internal/poly"
	"dsh/internal/privacy"
	"dsh/internal/psi"
	"dsh/internal/rff"
	"dsh/internal/serve"
	"dsh/internal/sphere"
	"dsh/internal/xrand"
)

// Rand is the deterministic pseudo-random generator used by every sampler
// in the library.
type Rand = xrand.Rand

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return xrand.New(seed) }

// Core framework types (Definition 1.1).
type (
	// Family is a distance-sensitive hash family over point type P.
	Family[P any] = core.Family[P]
	// Pair is a single (h, g) draw from a family.
	Pair[P any] = core.Pair[P]
	// Hasher maps points to 64-bit hash values.
	Hasher[P any] = core.Hasher[P]
	// BatchHasher is a Hasher that evaluates whole blocks of points per
	// call, emitting bit-identical keys to point-at-a-time Hash; the index
	// batch engine and builders use it to keep one repetition's draws
	// cache-resident while a block streams through.
	BatchHasher[P any] = core.BatchHasher[P]
	// CPF is a collision probability function with domain metadata.
	CPF = core.CPF
	// Domain identifies a CPF's argument convention.
	Domain = core.Domain
	// Estimate is a Monte-Carlo collision probability estimate.
	Estimate = core.Estimate
)

// CPF domains.
const (
	DomainDistance        = core.DomainDistance
	DomainRelativeHamming = core.DomainRelativeHamming
	DomainInnerProduct    = core.DomainInnerProduct
)

// Lemma 1.4 combinators.
func Concat[P any](parts ...Family[P]) Family[P] { return core.Concat(parts...) }

// Power returns the k-fold concatenation of fam with itself (CPF f^k).
func Power[P any](fam Family[P], k int) Family[P] { return core.Power(fam, k) }

// Mixture returns the convex combination of families (CPF sum w_i f_i).
func Mixture[P any](parts []Family[P], weights []float64) Family[P] {
	return core.Mixture(parts, weights)
}

// EstimateCollision estimates a family's CPF at x by Monte-Carlo sampling.
func EstimateCollision[P any](rng *Rand, fam Family[P], gen core.PairGenerator[P], x float64, trials int, z float64) Estimate {
	return core.EstimateCollision(rng, fam, gen, x, trials, z)
}

// Hamming space. BitVector is a packed binary vector.
type BitVector = bitvec.Vector

// NewBits returns an all-zero bit vector of dimension d.
func NewBits(d int) BitVector { return bitvec.New(d) }

// RandomBits returns a uniform random bit vector.
func RandomBits(rng *Rand, d int) BitVector { return bitvec.Random(rng, d) }

// BitsAtDistance returns a copy of x with exactly r random bits flipped.
func BitsAtDistance(rng *Rand, x BitVector, r int) BitVector {
	return bitvec.AtDistance(rng, x, r)
}

// HammingDistance returns the Hamming distance between bit vectors.
func HammingDistance(x, y BitVector) int { return bitvec.Distance(x, y) }

// BitSampling returns the classical bit-sampling LSH (CPF 1 - t).
func BitSampling(d int) Family[BitVector] { return hamming.BitSampling(d) }

// AntiBitSampling returns the Section 4.1 anti-LSH (CPF t).
func AntiBitSampling(d int) Family[BitVector] { return hamming.AntiBitSampling(d) }

// Polynomial is a real-coefficient polynomial (constant term first).
type Polynomial = poly.Poly

// NewPolynomial builds a polynomial from coefficients, low degree first.
func NewPolynomial(coeffs ...float64) Polynomial { return poly.New(coeffs...) }

// PolynomialScheme is the Theorem 5.2 result: a family with CPF P(t)/Delta.
type PolynomialScheme = hamming.PolynomialScheme

// PolynomialFamily builds the Theorem 5.2 Hamming family for P.
func PolynomialFamily(d int, p Polynomial) (*PolynomialScheme, error) {
	return hamming.PolynomialFamily(d, p)
}

// MonotonePolynomialFamily builds the Lemma 1.4 mixture family with CPF
// exactly P(t), for P with non-negative coefficients summing to 1.
func MonotonePolynomialFamily(d int, p Polynomial) (Family[BitVector], error) {
	return hamming.MonotonePolynomialFamily(d, p)
}

// Unit sphere.

// SimHash returns Charikar's hyperplane LSH (CPF 1 - arccos(alpha)/pi).
func SimHash(d int) Family[[]float64] { return sphere.SimHash(d) }

// AntiSimHash returns the query-negated SimHash (CPF arccos(alpha)/pi).
func AntiSimHash(d int) Family[[]float64] { return sphere.AntiSimHash(d) }

// CrossPolytope returns the CP+ family of Section 2.1.
func CrossPolytope(d int) Family[[]float64] { return sphere.CrossPolytope(d) }

// AntiCrossPolytope returns the query-negated CP- family (Corollary 2.2).
func AntiCrossPolytope(d int) Family[[]float64] { return sphere.AntiCrossPolytope(d) }

// FastCrossPolytope returns the FFT-accelerated CP+ family: the dense
// Gaussian rotation replaced by rounds of (random sign flips x
// Walsh-Hadamard transform) over the input zero-padded to a power of two,
// so one hash costs O(d log d) instead of O(d^2) with statistically
// matching collision probabilities. Its hashers implement BatchHasher.
func FastCrossPolytope(d int) Family[[]float64] { return sphere.FastCrossPolytope(d) }

// FastAntiCrossPolytope returns the query-negated fast CP- family, the
// structured-rotation analogue of AntiCrossPolytope.
func FastAntiCrossPolytope(d int) Family[[]float64] { return sphere.FastAntiCrossPolytope(d) }

// PackedSimHash returns k independent SimHash hyperplanes packed row-major
// into one matrix whose hasher emits the k sign bits as a single key: the
// CPF equals Power(SimHash(d), k)'s, but the hashers implement BatchHasher
// and evaluate query blocks as a cache-blocked matrix product.
func PackedSimHash(d, k int) Family[[]float64] { return sphere.PackedSimHash(d, k) }

// Filter is the Section 2.2 cap-sequence family (Theorem 1.2).
type Filter = sphere.Filter

// FilterPlus returns D+ with threshold t (increasing CPF).
func FilterPlus(d int, t float64) *Filter { return sphere.NewFilterPlus(d, t) }

// FilterMinus returns the query-negated D- (decreasing CPF, Theorem 1.2).
func FilterMinus(d int, t float64) *Filter { return sphere.NewFilterMinus(d, t) }

// AnnulusFamily is the unimodal family of Section 6.2.
type AnnulusFamily = sphere.AnnulusFamily

// Annulus returns the Section 6.2 family peaking at inner product alphaMax.
func Annulus(d int, alphaMax, t float64) *AnnulusFamily {
	return sphere.NewAnnulus(d, alphaMax, t)
}

// AnnulusBounds returns the Theorem 6.2 interval [alpha-, alpha+].
func AnnulusBounds(alphaMax, s float64) (alphaMinus, alphaPlus float64) {
	return sphere.AnnulusBounds(alphaMax, s)
}

// Step returns a step-function CPF family flat on [alphaLo, alphaHi]
// (Figure 2 / Theorem 6.5 / Section 6.4).
func Step(d int, alphaLo, alphaHi float64, levels int, t float64) Family[[]float64] {
	return sphere.NewStep(d, alphaLo, alphaHi, levels, t)
}

// Valiant returns the Theorem 5.1 family with CPF 1 - arccos(P(alpha))/pi,
// for P with absolute coefficient sum 1.
func Valiant(d int, p Polynomial) (Family[[]float64], error) {
	return sphere.NewValiant(d, p)
}

// SketchValiant returns the TensorSketch-approximated Theorem 5.1 family.
func SketchValiant(d int, p Polynomial, width int) (Family[[]float64], error) {
	return sphere.NewSketchValiant(d, p, width)
}

// Euclidean space.

// PStable is the R_{k,w} family of Section 4.2.
type PStable = euclid.PStable

// NewPStable returns R_{k,w} for dimension d (Figure 1, Theorem 4.1).
func NewPStable(d, k int, w float64) *PStable { return euclid.NewPStable(d, k, w) }

// Applications (Section 6).

// Index is a generic multi-repetition asymmetric LSH index.
type Index[P any] = index.Index[P]

// NewIndex builds an index over points with L repetitions of fam.
func NewIndex[P any](rng *Rand, fam Family[P], L int, points []P) *Index[P] {
	return index.New(rng, fam, L, points)
}

// AnnulusIndex is the Theorem 6.1 annulus-search structure: a query
// veneer served by either backend — a frozen static index
// (NewAnnulusIndex) or a mutable DynamicIndex (NewDynamicAnnulusIndex).
type AnnulusIndex[P any] = index.AnnulusIndex[P]

// NewAnnulusIndex builds the Theorem 6.1 structure over a fresh static
// index.
func NewAnnulusIndex[P any](rng *Rand, fam Family[P], L int, points []P, within func(q, x P) bool) *AnnulusIndex[P] {
	return index.NewAnnulus(rng, fam, L, points, within)
}

// NewDynamicAnnulusIndex wraps an existing DynamicIndex in the
// Theorem 6.1 annulus-search algorithm. The veneer shares the backend's
// storage: Inserts, Deletes and compactions through dx are visible to
// subsequent queries immediately, and several veneers may wrap one
// backend.
func NewDynamicAnnulusIndex[P any](dx *DynamicIndex[P], within func(q, x P) bool) *AnnulusIndex[P] {
	return index.NewDynamicAnnulus(dx, within)
}

// RangeReporter is the Theorem 6.5 output-sensitive reporting structure:
// a query veneer served by either backend — a frozen static index
// (NewRangeReporter) or a mutable DynamicIndex (NewDynamicRangeReporter).
type RangeReporter[P any] = index.RangeReporter[P]

// NewRangeReporter builds the Theorem 6.5 structure over a fresh static
// index.
func NewRangeReporter[P any](rng *Rand, fam Family[P], L int, points []P, inRange func(q, x P) bool) *RangeReporter[P] {
	return index.NewRangeReporter(rng, fam, L, points, inRange)
}

// NewDynamicRangeReporter wraps an existing DynamicIndex in the
// Theorem 6.5 reporting algorithm; mutations through dx are visible to
// subsequent queries immediately.
func NewDynamicRangeReporter[P any](dx *DynamicIndex[P], inRange func(q, x P) bool) *RangeReporter[P] {
	return index.NewDynamicRangeReporter(dx, inRange)
}

// RepetitionsForCPF returns L = ceil(1/f).
func RepetitionsForCPF(f float64) int { return index.RepetitionsForCPF(f) }

// DynamicIndex is the mutable, LSM-style variant of Index: a map-layout
// memtable absorbs Inserts, immutable flat-table segments hold frozen
// points, and a tombstone bitmap records Deletes. The repetition draws are
// shared across all layers, so collision-probability semantics match a
// static Index over the live points exactly. All methods are safe for
// concurrent use. With DynamicOptions.AsyncFreeze, a full memtable keeps
// serving reads while its tables build off-lock; segments retain their
// hash-key columns, so every merge (monolithic or tiered, see
// CompactionPolicy) moves memory instead of re-evaluating hash functions.
// Compact folds everything into one flat segment, after which steady-state
// queries through a DynamicQuerier allocate nothing.
type DynamicIndex[P any] = index.DynamicIndex[P]

// DynamicOptions configures a DynamicIndex (memtable freeze threshold,
// asynchronous freezing, background compaction and its merge policy).
type DynamicOptions = index.DynamicOptions

// CompactionPolicy selects how automatic (background) compaction merges a
// DynamicIndex's segments; explicit Compact calls always merge everything.
type CompactionPolicy = index.CompactionPolicy

// Compaction policies.
const (
	// CompactAll folds all frozen state into a single segment on every
	// automatic compaction.
	CompactAll = index.CompactAll
	// CompactTiered merges only contiguous runs of the newest
	// similar-sized segments, so large old segments are rewritten rarely
	// (each row moves O(log n) times over the index's life).
	CompactTiered = index.CompactTiered
	// CompactLeveled keeps one big bottom segment plus a small upper tier
	// and garbage-collects tombstones in its bottom-level merges: dead
	// rows are dropped permanently, survivors are renumbered through a
	// dense shrinking id space, and the tombstone bitmap is compacted.
	// Ids are stable only between GC merges — use InsertKeyed for durable
	// identity, and GCStats for the reclamation counters.
	CompactLeveled = index.CompactLeveled
)

// GCStats reports tombstone occupancy and garbage-collection progress for
// a DynamicIndex or (summed across shards) a ShardedIndex; obtain it with
// their GCStats methods. Only CompactLeveled reclaims bitmap storage and
// collects rows permanently.
type GCStats = index.GCStats

// DynamicQuerier is the reusable per-goroutine query scratch of a
// DynamicIndex; obtain one with DynamicIndex.NewQuerier.
type DynamicQuerier[P any] = index.DynamicQuerier[P]

// NewDynamicIndex builds a dynamic index over the initial points (global
// ids 0..len-1) with L repetitions of fam. It consumes rng exactly like
// NewIndex, so a static and a dynamic index seeded identically share
// their repetition draws.
func NewDynamicIndex[P any](rng *Rand, fam Family[P], L int, points []P, opts DynamicOptions) *DynamicIndex[P] {
	return index.NewDynamic(rng, fam, L, points, opts)
}

// ShardedIndex is the multi-writer serving core: K independent
// DynamicIndex shards — each with its own memtable, segment list, freezer,
// compaction policy and locks — sharing one set of L repetition draws, so
// inserts and deletes on different shards never contend while queries keep
// the exact collision-probability semantics (and candidate/distinct
// counts) of a single DynamicIndex over the same live points. Points are
// partitioned by global id: id g lives on shard g mod K. Under RouteHash
// routing, InsertKeyed sends every version of an external key to one
// hash-chosen shard, making re-insertion an atomic upsert, and Snapshot
// pins all shards at a single instant via the epoch barrier.
type ShardedIndex[P any] = index.ShardedIndex[P]

// ShardOptions configures a ShardedIndex: the shard count, the insert
// Routing discipline, and the DynamicOptions applied to every shard.
type ShardOptions = index.ShardOptions

// Routing selects how a ShardedIndex assigns inserts to shards; see
// RouteRoundRobin and RouteHash.
type Routing = index.Routing

// Insert-routing disciplines.
const (
	// RouteRoundRobin rotates plain Inserts across shards (dense ids,
	// balanced shards); InsertKeyed panics under it.
	RouteRoundRobin = index.RouteRoundRobin
	// RouteHash routes InsertKeyed by a hash of the external key so every
	// version of a key lives on one shard; plain Insert panics under it.
	RouteHash = index.RouteHash
)

// NewShardedDynamicIndex builds a sharded dynamic index over the initial
// points (global ids 0..len-1, point i on shard i mod Shards) with L
// repetitions of fam shared by every shard. It consumes rng exactly like
// NewIndex and NewDynamicIndex, so sharded, single-shard and static
// indexes seeded identically share their repetition draws. It panics with
// a clear message when fam is nil, L <= 0, or opts.Shards <= 0.
func NewShardedDynamicIndex[P any](rng *Rand, fam Family[P], L int, points []P, opts ShardOptions) *ShardedIndex[P] {
	return index.NewSharded(rng, fam, L, points, opts)
}

// Durability: a DynamicIndex or ShardedIndex can be backed by an on-disk
// store — a checksummed write-ahead log journaling every mutation
// (including the hash keys, so recovery never re-evaluates a hash
// function), immutable segment files written on checkpoint, and an
// atomically-renamed manifest tying them together. Open* rebuilds the
// exact serving state after a clean shutdown, a crash, or a torn WAL
// tail.

// PointCodec serializes index points for the WAL and segment files.
type PointCodec[P any] = durable.PointCodec[P]

// Point codecs for the built-in point types.
type (
	// Float64Codec encodes []float64 points as raw IEEE-754 words.
	Float64Codec = durable.Float64Codec
	// BitvecCodec encodes BitVector points.
	BitvecCodec = durable.BitvecCodec
)

// DurableOptions configures the on-disk store of a durable index (fsync
// policy and cadence).
type DurableOptions = durable.Options

// FsyncPolicy selects when the write-ahead log is synced to stable
// storage; see FsyncAlways, FsyncInterval and FsyncNever.
type FsyncPolicy = durable.FsyncPolicy

// WAL fsync policies.
const (
	// FsyncAlways syncs after every record: no acknowledged mutation is
	// ever lost, at a per-mutation fsync cost.
	FsyncAlways = durable.FsyncAlways
	// FsyncInterval syncs at most once per DurableOptions.Interval: a
	// crash loses at most the last interval of mutations.
	FsyncInterval = durable.FsyncInterval
	// FsyncNever leaves syncing to the OS page cache (plus the forced
	// syncs at checkpoints): fastest, weakest.
	FsyncNever = durable.FsyncNever
)

// NewDurableDynamicIndex builds an empty dynamic index journaled under
// dir (created if absent; it must not already hold a store). The index
// behaves exactly like NewDynamicIndex(NewRand(seed), fam, L, nil, opts)
// — same repetition draws, same candidate streams — with every mutation
// additionally logged for recovery. Close it to checkpoint and seal the
// store; DurableErr surfaces disk failures (the index keeps serving from
// memory either way).
func NewDurableDynamicIndex[P any](dir string, seed uint64, fam Family[P], L int, codec PointCodec[P], opts DynamicOptions, dopts DurableOptions) (*DynamicIndex[P], error) {
	return index.NewDurableDynamic(dir, seed, fam, L, codec, opts, dopts)
}

// OpenDynamicIndex recovers a dynamic index from a directory written by
// NewDurableDynamicIndex: segments load directly and the WAL tail
// replays, with zero hash evaluations. fam must be the family the store
// was created with (its per-repetition draws are re-sampled from the
// recorded seed).
func OpenDynamicIndex[P any](dir string, fam Family[P], codec PointCodec[P], opts DynamicOptions, dopts DurableOptions) (*DynamicIndex[P], error) {
	return index.OpenDynamic(dir, fam, codec, opts, dopts)
}

// NewDurableShardedIndex builds an empty sharded index whose shards
// journal into per-shard subdirectories of dir; shards checkpoint and
// recover in parallel.
func NewDurableShardedIndex[P any](dir string, seed uint64, fam Family[P], L int, codec PointCodec[P], opts ShardOptions, dopts DurableOptions) (*ShardedIndex[P], error) {
	return index.NewDurableSharded(dir, seed, fam, L, codec, opts, dopts)
}

// OpenShardedIndex recovers a sharded index written by
// NewDurableShardedIndex, opening all shards in parallel.
func OpenShardedIndex[P any](dir string, fam Family[P], codec PointCodec[P], dyn DynamicOptions, dopts DurableOptions) (*ShardedIndex[P], error) {
	return index.OpenSharded(dir, fam, codec, dyn, dopts)
}

// ErrNotJournaled is reported by DurableErr when a mutation arrived
// after Close sealed the store: it was applied in memory but exists
// nowhere on disk.
var ErrNotJournaled = index.ErrNotJournaled

// Snapshot is an immutable, point-in-time view of a DynamicIndex: queries
// and scans over it are lock-free and observe one consistent id set while
// the live index keeps absorbing inserts, deletes and compactions. Obtain
// one with DynamicIndex.Snapshot; release it with Release when done.
type Snapshot[P any] = index.Snapshot[P]

// ShardedSnapshot is the sharded counterpart of Snapshot: one pinned
// per-shard view per shard, unified under the global-id arithmetic and
// together representing the whole index at a single instant (established
// by the epoch barrier). Obtain one with ShardedIndex.Snapshot.
type ShardedSnapshot[P any] = index.ShardedSnapshot[P]

// SnapshotQuerier is the reusable per-goroutine query scratch of a
// Snapshot or ShardedSnapshot; obtain one with their NewQuerier methods.
type SnapshotQuerier[P any] = index.SnapshotQuerier[P]

// ShardedQuerier is the reusable per-goroutine query scratch of a
// ShardedIndex; obtain one with ShardedIndex.NewQuerier.
type ShardedQuerier[P any] = index.ShardedQuerier[P]

// Source is a serving backend handle: every index backend in this package
// (Index, DynamicIndex, ShardedIndex, Snapshot, ShardedSnapshot)
// satisfies it, and the Over constructors bind predicate veneers to one.
type Source[P any] = index.Source[P]

// NewAnnulusIndexOver wraps any serving backend — static, dynamic,
// sharded, or a snapshot of either — in the Theorem 6.1 annulus-search
// algorithm.
func NewAnnulusIndexOver[P any](src Source[P], within func(q, x P) bool) *AnnulusIndex[P] {
	return index.NewAnnulusOver(src, within)
}

// NewRangeReporterOver wraps any serving backend — static, dynamic,
// sharded, or a snapshot of either — in the Theorem 6.5 reporting
// algorithm.
func NewRangeReporterOver[P any](src Source[P], inRange func(q, x P) bool) *RangeReporter[P] {
	return index.NewRangeReporterOver(src, inRange)
}

// Querier is a reusable query-scratch object bound to one Index: an
// epoch-stamped visited array for deduplication, a negated-query buffer,
// and a reusable output buffer. Obtain one with Index.NewQuerier; a
// Querier is not safe for concurrent use (use one per goroutine).
// Steady-state queries through a Querier perform no heap allocations; its
// CollectDistinct returns a slice that is only valid until the Querier's
// next use.
type Querier[P any] = index.Querier[P]

// Privacy (Section 6.4).

// DistanceEstimator is the PSI-based private distance estimation protocol.
type DistanceEstimator[P any] = privacy.Estimator[P]

// NewDistanceEstimator samples the protocol's shared randomness.
func NewDistanceEstimator[P any](rng *Rand, fam Family[P], pClose, pFar, eps float64) (*DistanceEstimator[P], error) {
	return privacy.NewEstimator(rng, fam, pClose, pFar, eps)
}

// PSIProtocol is a two-party private set intersection implementation.
type PSIProtocol = psi.Protocol

// PlaintextPSI returns the non-private reference PSI.
func PlaintextPSI() PSIProtocol { return psi.Plaintext{} }

// DHPSI returns the semi-honest commutative-encryption PSI.
func DHPSI() PSIProtocol { return psi.DH{} }

// HyperplaneIndex is the Section 6.1 orthogonal-vector search structure.
type HyperplaneIndex = index.HyperplaneIndex

// NewHyperplaneIndex builds a hyperplane-query index over unit vectors:
// queries return a point with |<x, q>| <= alpha.
func NewHyperplaneIndex(rng *Rand, d int, alpha, t float64, points [][]float64) *HyperplaneIndex {
	return index.NewHyperplane(rng, d, alpha, t, points)
}

// l_s-space lifting via random Fourier features (Section 2 remark).

// RFFKernel identifies the shift-invariant kernel of a feature map.
type RFFKernel = rff.Kernel

// Random-feature kernels.
const (
	GaussianKernel  = rff.Gaussian
	LaplacianKernel = rff.Laplacian
)

// LiftToKernelSpace lifts a unit-sphere family to R^d under the given
// kernel: the lifted CPF is approximately baseCPF(kernel(distance)).
func LiftToKernelSpace(kernel RFFKernel, d, features int, sigma float64, base Family[[]float64]) Family[[]float64] {
	return rff.NewFamily(kernel, d, features, sigma, base)
}

// Similarity joins (the paper's introductory motivation).

// JoinPair is one emitted pair of a similarity join.
type JoinPair = index.JoinPair

// JoinStats reports the work of a join.
type JoinStats = index.JoinStats

// Join runs a distance-sensitive similarity join between two sets: with a
// unimodal family it is an annulus join ("close but not too close").
func Join[P any](rng *Rand, fam Family[P], L int, setA, setB []P, verify func(a, b P) bool) ([]JoinPair, JoinStats) {
	return index.Join(rng, fam, L, setA, setB, verify)
}

// SelfJoin joins a set with itself, skipping the diagonal.
func SelfJoin[P any](rng *Rand, fam Family[P], L int, set []P, verify func(a, b P) bool) ([]JoinPair, JoinStats) {
	return index.SelfJoin(rng, fam, L, set, verify)
}

// NewParallelIndex builds an index with concurrent table construction.
func NewParallelIndex[P any](rng *Rand, fam Family[P], L int, points []P) *Index[P] {
	return index.NewParallel(rng, fam, L, points)
}

// Concurrent batch querying (the serving path): every index structure has
// a QueryBatch method fanning a slice of queries across a worker pool with
// deterministic results; see BatchOptions and BatchStats.

// QueryStats reports the work performed by a single query.
type QueryStats = index.QueryStats

// BatchOptions configures a concurrent batch query (worker count,
// per-query candidate cap, optional deterministic per-query randomness).
type BatchOptions = index.BatchOptions

// BatchStats aggregates work and latency percentiles over a query batch.
type BatchStats = index.BatchStats

// RunBatch fans fn over n query indices across a worker pool, splitting a
// private deterministic generator per index when opts.Rand is set, and
// returns the wall-clock duration of the run (for AggregateStats). It is
// the engine underneath every QueryBatch method.
func RunBatch(n int, opts BatchOptions, fn func(i int, rng *Rand)) time.Duration {
	return index.RunBatch(n, opts, fn)
}

// AggregateStats folds per-query stats and a wall-clock duration into a
// BatchStats with latency percentiles.
func AggregateStats(per []QueryStats, wall time.Duration) BatchStats {
	return index.AggregateStats(per, wall)
}

// JoinParallel computes the same join as Join — identical output and stats
// for the same rng stream — fanning the L repetitions across workers
// (workers <= 0 means GOMAXPROCS).
func JoinParallel[P any](rng *Rand, fam Family[P], L int, setA, setB []P, verify func(a, b P) bool, workers int) ([]JoinPair, JoinStats) {
	return index.JoinParallel(rng, fam, L, setA, setB, verify, workers)
}

// CPF design (fitting target CPFs over the Lemma 1.4 closure).

// FitTarget is a desired CPF given by sample points.
type FitTarget = cpfit.Target

// FitResult is a fitted mixture family with its error report.
type FitResult[P any] = cpfit.Result[P]

// FitGrid samples fn uniformly over [lo, hi] as a fit target.
func FitGrid(lo, hi float64, n int, fn func(float64) float64) FitTarget {
	return cpfit.Grid(lo, hi, n, fn)
}

// FitCPF finds non-negative mixture weights over powers of the base
// families (a Lemma 1.4 dictionary) approximating the target CPF in least
// squares, subject to total mass <= 1.
func FitCPF[P any](maxPower int, target FitTarget, bases ...Family[P]) (*FitResult[P], error) {
	return cpfit.Fit(cpfit.BuildDictionary(maxPower, bases...), target)
}

// Observability. The serving core carries an always-on metrics plane:
// striped lock-free counters, gauges and log2 latency histograms record
// every query, insert, delete, memtable freeze, compaction, GC fold,
// snapshot pin and WAL/segment write, plus a bounded ring-buffer trace of
// lifecycle events — with zero heap allocations on the steady-state query
// and insert paths. Metrics returns a point-in-time snapshot; the obshttp
// subpackage serves the same registry over HTTP (Prometheus text, expvar
// JSON, pprof).

// MetricsSnapshot is a point-in-time copy of the process-wide metrics
// registry: folded counter totals, gauge values, histogram snapshots, and
// the buffered lifecycle events (oldest first).
type MetricsSnapshot = obs.Snapshot

// MetricsHistogram is one folded latency histogram; its Quantile method
// estimates percentiles (p50/p99/p999) by interpolation inside log2
// buckets.
type MetricsHistogram = obs.HistogramSnapshot

// TraceEvent is one buffered lifecycle event: a monotone sequence number,
// timestamp, kind ("freeze.async", "compact.tiered", "gc",
// "snapshot.fallback", "wal.rotate", "recover", "durable.fault", ...) and
// two kind-specific integer arguments.
type TraceEvent = obs.Event

// Metrics snapshots the process-wide metrics registry. Each metric is
// internally consistent; the set is not a global atomic cut. The snapshot
// is a plain value — retain, diff and serialize it freely.
func Metrics() MetricsSnapshot { return obs.Default.Snapshot() }

// Serving edge. The serve subpackage is a stdlib-only HTTP front end over
// a ShardedIndex: it coalesces queries arriving on separate connections
// into shared batch calls, sheds load with 429/503 + Retry-After when an
// in-flight budget or queue watermark is exceeded, and answers repeated
// queries from a hot-query cache keyed by the per-repetition hash-key
// signature, invalidated wholesale whenever the index epoch moves. See
// cmd/dshserve for the standalone daemon and dshbench -serve for the
// socket-level load generator.

// Server is the HTTP serving edge over one ShardedIndex; create with
// NewServer, mount Handler on an http.Server, shut down with Drain.
type Server = serve.Server

// ServeOptions configures a Server; the zero value of every field except
// Dim is usable.
type ServeOptions = serve.Options

// NewServer builds a serving edge over ix and starts its dispatcher.
func NewServer(ix *ShardedIndex[[]float64], opts ServeOptions) *Server {
	return serve.New(ix, opts)
}

// Kernel density estimation (the paper's future-work application).

// KDEstimator estimates kernel density sums by collision counting: with a
// family whose CPF equals the kernel, matched-bucket sizes are unbiased
// density estimates and queries never scan the data.
type KDEstimator[P any] = kde.Estimator[P]

// NewKDEstimator builds a density estimator with L repetitions.
func NewKDEstimator[P any](rng *Rand, fam Family[P], L int, points []P) *KDEstimator[P] {
	return kde.New(rng, fam, L, points)
}
