module dsh

go 1.24
