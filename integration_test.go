package dsh_test

// Integration tests exercising multi-package pipelines end to end through
// the public facade: index + family + workload, fitted families used for
// search, and kernel-lifted families used for private estimation.

import (
	"math"
	"testing"

	"dsh"
	"dsh/internal/vec"
	"dsh/internal/workload"
	"dsh/internal/xrand"
)

func TestEndToEndRecommendationPipeline(t *testing.T) {
	rng := dsh.NewRand(42)
	const d = 24
	corpus := workload.NewArticleCorpus(xrand.New(7), d, 10, 60, 0.5)

	// Build: unimodal annulus index targeting "related, not duplicate".
	fam := dsh.Annulus(d, 0.5, 1.8)
	L := dsh.RepetitionsForCPF(fam.CPF().Eval(0.5))
	within := func(q, x []float64) bool {
		s := vec.Dot(q, x)
		return s >= 0.35 && s <= 0.65
	}
	ai := dsh.NewAnnulusIndex[[]float64](rng, fam, L, corpus.Points, within)

	// Query multiple articles; each answer must satisfy the band
	// predicate, and at least some queries must succeed.
	hits := 0
	for qi := 0; qi < 12; qi++ {
		q := corpus.Points[qi*7]
		if id, _ := ai.Query(q); id >= 0 {
			hits++
			if !within(q, corpus.Points[id]) {
				t.Fatalf("query %d returned out-of-band point", qi)
			}
		}
	}
	if hits < 4 {
		t.Errorf("only %d/12 annulus queries succeeded", hits)
	}
}

func TestEndToEndFittedFamilyDrivesJoin(t *testing.T) {
	// Fit a unimodal CPF on the Hamming cube, then run a similarity join
	// with the *fitted* family: the designer output is a first-class
	// family usable by every application structure.
	rng := dsh.NewRand(43)
	const d = 128
	res, err := dsh.FitCPF(3,
		dsh.FitGrid(0, 1, 21, func(x float64) float64 {
			return 0.1 * math.Exp(-10*(x-0.25)*(x-0.25))
		}),
		dsh.BitSampling(d),
		dsh.AntiBitSampling(d),
		dsh.Concat(dsh.Power(dsh.BitSampling(d), 2), dsh.AntiBitSampling(d)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Family == nil {
		t.Fatal("no fitted family")
	}
	// Dataset: pairs planted at relative distance 0.25.
	var pts []dsh.BitVector
	const nPairs = 15
	for i := 0; i < nPairs; i++ {
		x := dsh.RandomBits(rng, d)
		pts = append(pts, x, dsh.BitsAtDistance(rng, x, d/4))
	}
	for i := 0; i < 50; i++ {
		pts = append(pts, dsh.RandomBits(rng, d))
	}
	verify := func(a, b dsh.BitVector) bool {
		r := float64(dsh.HammingDistance(a, b)) / d
		return r >= 0.15 && r <= 0.35
	}
	L := dsh.RepetitionsForCPF(res.Family.CPF().Eval(0.25)) * 2
	pairs, stats := dsh.SelfJoin(rng, res.Family, L, pts, verify)
	found := 0
	for _, p := range pairs {
		if p.B == p.A+1 && p.A%2 == 0 && int(p.A) < 2*nPairs {
			found++
		}
	}
	if found < nPairs*2/3 {
		t.Errorf("join found %d/%d planted pairs", found, nPairs)
	}
	if stats.Verified == 0 || stats.Emitted != len(pairs) {
		t.Errorf("stats inconsistent: %+v", stats)
	}
}

func TestEndToEndKernelLiftedPrivacy(t *testing.T) {
	// Lift a step family to l2 via RFF and run the privacy estimator over
	// it: "are these two (non-unit) feature vectors within distance r?"
	//
	// Note a structural limitation this test documents: the Gaussian
	// kernel is non-negative, so *far* pairs map to similarity ~0, never
	// to the negative-similarity region where the sphere step CPF has
	// strong contrast. Far rejection is therefore weak after lifting, and
	// the estimator must *predict* that honestly via its union bound.
	rng := dsh.NewRand(44)
	const d = 8
	const sigma = 2.0
	base := dsh.Step(128, 0.5, 0.9, 3, 1.8)
	lifted := dsh.LiftToKernelSpace(dsh.GaussianKernel, d, 128, sigma, base)

	// Close means kernel >= 0.5, i.e. distance <= sigma*sqrt(2 ln 2).
	rClose := sigma * math.Sqrt(2*math.Log(2))
	f := lifted.CPF()
	pClose := f.Eval(rClose * 0.8)
	pFar := f.Eval(rClose * 3)
	if pFar >= pClose {
		t.Fatalf("lifted CPF not decreasing: %v vs %v", pClose, pFar)
	}
	est, err := dsh.NewDistanceEstimator(rng, lifted, pClose*0.8, pFar, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	closeYes, farYes := 0, 0
	const reps = 15
	for i := 0; i < reps; i++ {
		x, q := vec.PairAtDistance(xrand.New(uint64(i)), d, rClose*0.7)
		out, err := est.Estimate(x, q, dsh.PlaintextPSI())
		if err != nil {
			t.Fatal(err)
		}
		if out.Close {
			closeYes++
		}
		x, q = vec.PairAtDistance(xrand.New(uint64(100+i)), d, rClose*3)
		out, err = est.Estimate(x, q, dsh.PlaintextPSI())
		if err != nil {
			t.Fatal(err)
		}
		if out.Close {
			farYes++
		}
	}
	if closeYes < reps*2/3 {
		t.Errorf("close pairs detected only %d/%d", closeYes, reps)
	}
	// The estimator's own false-positive prediction must cover the
	// measured rate (union bound, so it is an overestimate).
	pred := est.PredictedFalsePositive()
	if rate := float64(farYes) / reps; rate > math.Min(1, pred)+0.15 {
		t.Errorf("far yes-rate %v exceeds predicted bound %v", rate, pred)
	}
	// And the kernel-floor limitation must not invert the ordering.
	if farYes > closeYes {
		t.Errorf("far pairs (%d) out-collided close pairs (%d)", farYes, closeYes)
	}
}

func TestParallelIndexEquivalentQueries(t *testing.T) {
	rng := dsh.NewRand(45)
	pts := workload.SpherePoints(xrand.New(9), 500, 16)
	fam := dsh.Power(dsh.SimHash(16), 4)
	seq := dsh.NewIndex(rng, fam, 12, pts)
	par := dsh.NewParallelIndex(rng, fam, 12, pts)
	// Different random draws, but both must retrieve self-matches.
	for i := 0; i < 10; i++ {
		for _, ix := range []*dsh.Index[[]float64]{seq, par} {
			found := false
			for _, id := range ix.CollectDistinct(pts[i], 0) {
				if id == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("index lost point %d", i)
			}
		}
	}
}
