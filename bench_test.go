package dsh_test

// Benchmark harness: one benchmark per figure / experiment of the paper
// (see DESIGN.md section 3 for the experiment index). Each benchmark runs
// the corresponding experiment end-to-end with a reduced Monte-Carlo
// budget and reports ns/op for the full table; run cmd/dshbench for the
// full-budget tables recorded in EXPERIMENTS.md.
//
// Micro-benchmarks for the hot paths (sampling and hashing of each family)
// live alongside each package; headline ones are repeated here so that
// `go test -bench=. -benchmem .` gives a one-screen overview.

import (
	"fmt"
	"testing"

	"dsh"
	"dsh/internal/experiments"
	"dsh/internal/sketch"
	"dsh/internal/sphere"
	"dsh/internal/vec"
	"dsh/internal/xrand"
)

func benchConfig() experiments.Config {
	return experiments.Config{Trials: 1500, Seed: 7}
}

// --- one benchmark per paper artifact ---

func BenchmarkFig1EuclideanCPF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure1(benchConfig())
	}
}

func BenchmarkFig2StepCPF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure2(benchConfig())
	}
}

func BenchmarkFig3Annuli(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure3(benchConfig())
	}
}

func BenchmarkFig4PolynomialCPF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure4(benchConfig())
	}
}

func BenchmarkFilterCPF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.FilterCPF(benchConfig())
	}
}

func BenchmarkCrossPolytope(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.CrossPolytopeExp(benchConfig())
	}
}

func BenchmarkLowerBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.LowerBound(benchConfig())
	}
}

func BenchmarkAntiBitSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AntiBit(benchConfig())
	}
}

func BenchmarkEuclidRho(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.EuclidRho(benchConfig())
	}
}

func BenchmarkPolyCPF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.PolyCPF(benchConfig())
	}
}

func BenchmarkAnnulusSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AnnulusSearch(benchConfig())
	}
}

func BenchmarkRangeReport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RangeReport(benchConfig())
	}
}

func BenchmarkPrivacyEstimation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Privacy(benchConfig())
	}
}

func BenchmarkCombinators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Combinators(benchConfig())
	}
}

// --- headline micro-benchmarks ---

func BenchmarkSampleHashAntiBit(b *testing.B) {
	rng := dsh.NewRand(1)
	fam := dsh.AntiBitSampling(1024)
	x := dsh.RandomBits(rng, 1024)
	y := dsh.BitsAtDistance(rng, x, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pair := fam.Sample(rng)
		_ = pair.Collides(x, y)
	}
}

func BenchmarkSampleHashSimHash(b *testing.B) {
	rng := dsh.NewRand(1)
	fam := dsh.SimHash(128)
	x, y := vec.UnitPairWithDot(xrand.New(2), 128, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pair := fam.Sample(rng)
		_ = pair.Collides(x, y)
	}
}

func BenchmarkSampleHashFilterMinus(b *testing.B) {
	rng := dsh.NewRand(1)
	fam := dsh.FilterMinus(64, 2)
	x, y := vec.UnitPairWithDot(xrand.New(2), 64, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pair := fam.Sample(rng)
		_ = pair.Collides(x, y)
	}
}

func BenchmarkSampleHashCrossPolytope(b *testing.B) {
	rng := dsh.NewRand(1)
	fam := dsh.CrossPolytope(64)
	x, y := vec.UnitPairWithDot(xrand.New(2), 64, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pair := fam.Sample(rng)
		_ = pair.Collides(x, y)
	}
}

func BenchmarkSampleHashPStable(b *testing.B) {
	rng := dsh.NewRand(1)
	fam := dsh.NewPStable(128, 3, 1)
	x, y := vec.PairAtDistance(xrand.New(2), 128, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pair := fam.Sample(rng)
		_ = pair.Collides(x, y)
	}
}

func BenchmarkAnnulusIndexBuild(b *testing.B) {
	rng := xrand.New(1)
	pts := make([][]float64, 2000)
	for i := range pts {
		pts[i] = vec.RandomUnit(rng, 24)
	}
	fam := dsh.Annulus(24, 0.5, 2)
	L := dsh.RepetitionsForCPF(fam.CPF().Eval(0.5))
	within := func(q, x []float64) bool {
		a := vec.Dot(q, x)
		return a >= 0.35 && a <= 0.65
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsh.NewAnnulusIndex[[]float64](rng, fam, L, pts, within)
	}
}

func BenchmarkDistanceEstimatorRound(b *testing.B) {
	rng := xrand.New(1)
	fam := dsh.Step(24, 0.5, 0.9, 3, 2.0)
	est, err := dsh.NewDistanceEstimator(rng, fam, 0.002, 0.0001, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	x, q := vec.UnitPairWithDot(rng, 24, 0.7)
	proto := dsh.PlaintextPSI()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(x, q, proto); err != nil {
			b.Fatal(err)
		}
	}
}

// --- extension experiments ---

func BenchmarkAnnulusJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AnnulusJoin(benchConfig())
	}
}

func BenchmarkCPFDesign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.CPFDesign(benchConfig())
	}
}

func BenchmarkTaylorCPF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.TaylorCPF(benchConfig())
	}
}

func BenchmarkHyperplaneQueries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.HyperplaneQueries(benchConfig())
	}
}

func BenchmarkKernelSpaces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.KernelSpaces(benchConfig())
	}
}

// --- ablation benches for the design choices DESIGN.md calls out ---

// Ablation: filter truncation length m trades hash cost against CPF mass
// (Lemma A.5 sets m = ceil(2t^3/p') to make the miss probability
// negligible; shorter sequences truncate the CPF).
func BenchmarkAblationFilterM(b *testing.B) {
	rng := xrand.New(1)
	x, y := vec.UnitPairWithDot(xrand.New(2), 24, 0.5)
	for _, frac := range []int{1, 4, 16} {
		m := dsh.FilterMinus(24, 2).M() / frac
		if m < 1 {
			m = 1
		}
		fam := sphere.NewFilterWithM(24, 2, m, true)
		b.Run(fmt.Sprintf("m_div_%d", frac), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pair := fam.Sample(rng)
				_ = pair.Collides(x, y)
			}
		})
	}
}

// Ablation: annulus threshold t trades repetitions (L ~ 1/f(peak)) against
// CPF sharpness; larger t prunes better but costs more repetitions and
// longer cap scans.
func BenchmarkAblationAnnulusT(b *testing.B) {
	pts := workloadPoints(1000, 24)
	within := func(q, x []float64) bool {
		a := vec.Dot(q, x)
		return a >= 0.35 && a <= 0.65
	}
	for _, t := range []float64{1.4, 1.8, 2.2} {
		fam := dsh.Annulus(24, 0.5, t)
		L := dsh.RepetitionsForCPF(fam.CPF().Eval(0.5))
		b.Run(fmt.Sprintf("t_%.1f_L_%d", t, L), func(b *testing.B) {
			rng := xrand.New(3)
			for i := 0; i < b.N; i++ {
				ai := dsh.NewAnnulusIndex[[]float64](rng, fam, L, pts, within)
				_, _ = ai.Query(pts[0])
			}
		})
	}
}

// Ablation: TensorSketch width trades embedding time against inner-product
// accuracy for the Theorem 5.1 approximation.
func BenchmarkAblationSketchWidth(b *testing.B) {
	rng := xrand.New(1)
	x := vec.RandomUnit(rng, 64)
	for _, width := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("width_%d", width), func(b *testing.B) {
			ts := sketch.NewTensorSketch(xrand.New(2), 64, 3, width)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ts.Apply(x)
			}
		})
	}
}

// Ablation: parallel vs sequential index build.
func BenchmarkAblationIndexBuild(b *testing.B) {
	pts := workloadPoints(4000, 24)
	fam := dsh.Power(dsh.SimHash(24), 6)
	const L = 64
	b.Run("sequential", func(b *testing.B) {
		rng := xrand.New(4)
		for i := 0; i < b.N; i++ {
			dsh.NewIndex(rng, fam, L, pts)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		rng := xrand.New(4)
		for i := 0; i < b.N; i++ {
			dsh.NewParallelIndex(rng, fam, L, pts)
		}
	})
}

func workloadPoints(n, d int) [][]float64 {
	rng := xrand.New(99)
	out := make([][]float64, n)
	for i := range out {
		out[i] = vec.RandomUnit(rng, d)
	}
	return out
}

// --- batch query engine (serving path) ---

// BenchmarkBatchQueryEngine compares the sequential query loop against the
// concurrent QueryBatch engine through the root API. On multi-core
// hardware the batch variant should approach a GOMAXPROCS-fold speedup
// with results identical to the sequential loop.
func BenchmarkBatchQueryEngine(b *testing.B) {
	pts := workloadPoints(4000, 24)
	fam := dsh.Power(dsh.SimHash(24), 6)
	ix := dsh.NewIndex(xrand.New(5), fam, 48, pts)
	queries := workloadPoints(256, 24)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				ix.CollectDistinct(q, 0)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.QueryBatch(queries, dsh.BatchOptions{})
		}
	})
}
